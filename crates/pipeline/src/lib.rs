//! Corpus-level batch-synthesis pipeline for the `stc` workspace.
//!
//! The paper's evaluation is batch-shaped: Tables 1–2 run the OSTR
//! decomposition, state encoding and BIST flow over 13 IWLS'93 machines and
//! compare costs.  This crate drives that full flow over an entire corpus —
//! KISS2 files or the embedded benchmark suite — in parallel on a scoped
//! `std::thread` worker pool, and emits a deterministic, machine-readable
//! JSON report with paper-vs-measured columns (see `DESIGN.md` §3 at the
//! repository root).
//!
//! * [`Synthesis`] / [`SynthesisBuilder`] — the unified session API: one
//!   layered [`StcConfig`], typed artifacts ([`Decomposition`] → [`Encoded`]
//!   → [`Netlist`] → [`BistPlan`] → [`MachineReport`]), progress events and
//!   cooperative cancellation ([`Observer`]);
//! * [`embedded_corpus`] / [`kiss2_corpus`] — corpus loading;
//! * [`serve`] / [`serve_with`] — the JSON-lines request loop behind
//!   `stc serve`;
//! * [`NetServer`] — the TCP front end speaking the same protocol
//!   (`stc serve --listen`), with connection limits and graceful shutdown;
//! * [`ArtifactCache`] — the content-addressed response cache keyed by
//!   `(machine hash, config fingerprint)`;
//! * [`ServeMetrics`] — service counters behind the `stats` request and the
//!   periodic log line;
//! * [`SuiteReport`] — the deterministic report and its JSON serialisation;
//! * [`compare_benchmarks`] — the perf-baseline comparison behind the
//!   `stc bench-check` CI gate;
//! * [`Json`] — the minimal JSON value type used for emission and parsing
//!   (the vendored `serde` is a no-op marker crate);
//! * [`run_corpus`] / [`run_machine`] and the [`Stage`] trait — the
//!   pre-session surface, deprecated and kept as thin shims over the
//!   session (byte-identical reports).
//!
//! # Example
//!
//! ```
//! use stc_pipeline::{embedded_corpus, filter_by_names, Synthesis};
//!
//! let corpus = filter_by_names(embedded_corpus(), &["tav".to_string()]).unwrap();
//! let serial = Synthesis::builder().jobs(1).build().run_suite(&corpus, "demo");
//! let parallel = Synthesis::builder().jobs(4).build().run_suite(&corpus, "demo");
//! assert_eq!(
//!     serial.report.to_json_string(),
//!     parallel.report.to_json_string()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench_compare;
pub mod cache;
mod config;
mod corpus;
mod error;
mod json;
mod metrics;
mod net;
mod observe;
mod report;
mod runner;
mod serve;
mod session;

pub use bench_compare::{
    compare_benchmarks, compare_benchmarks_with_cores, format_speedup_table, load_baseline_dir,
    parse_baseline, BenchCheck, BenchDelta, BenchMeasurement, SpeedupDelta, SPEEDUP_GROUPS,
};
pub use cache::{ArtifactCache, CacheCounters, CacheLimits};
pub use config::{
    resolve_jobs, AnalysisSettings, ConfigError, EmitSettings, StcConfig, CONFIG_KEYS,
};
pub use corpus::{embedded_corpus, filter_by_names, kiss2_corpus, CorpusEntry};
pub use error::PipelineError;
pub use json::{Json, JsonError};
pub use metrics::{ServeMetrics, StageTimer};
pub use net::{NetOptions, NetServer, ServerHandle};
pub use observe::{CancelFlag, Event, NullObserver, Observer};
pub use report::{
    coverage_json, emit_json, format_summary_table, lint_json, optimize_json, search_stats_json,
    AnalysisReport, BistReport, ConfigEcho, EmitModuleDigest, EmitReport, LogicReport,
    MachineReport, MachineStatus, OptimizeReport, OptimizeSessionReport, SessionReport,
    SolveReport, SuiteReport, SuiteSummary, TestPointSuggestion, REPORT_SCHEMA_VERSION,
};
#[allow(deprecated)]
pub use runner::{run_corpus, run_machine};
pub use runner::{
    CoverageConfig, GateLevelLimits, MachineTiming, OptimizeConfig, PipelineConfig, SuiteRun,
};
pub use serve::{serve, serve_with, ServeOptions, ServeStats};
pub use session::{
    stage_names, BistPlan, CoverageReport, Decomposition, EmittedCode, Encoded, Netlist,
    OptimizedPlan, SessionError, Synthesis, SynthesisBuilder,
};
pub use stc_emit::{EmitTarget, EmittedModule};

#[allow(deprecated)]
use stc_bist::BistStage;
use stc_bist::SelfTestResult;
#[allow(deprecated)]
use stc_encoding::EncodeStage;
use stc_encoding::EncodedPipeline;
use stc_fsm::Mealy;
#[allow(deprecated)]
use stc_logic::LogicStage;
use stc_logic::PipelineLogic;
#[allow(deprecated)]
use stc_synth::SolveStage;
use stc_synth::{Realization, Solved};

/// A pipeline stage: a configured transformation from one flow artefact to
/// the next.
///
/// The concrete stages live in their home crates (the solver stage in
/// `stc-synth`, the encoder in `stc-encoding`, and so on) as plain structs
/// with an `apply` method, so each crate stays independently usable; this
/// trait unifies them for generic composition.  The input is a type
/// parameter rather than an associated type so a stage can consume borrowed
/// inputs of any lifetime.
#[deprecated(
    since = "0.1.0",
    note = "use the `Synthesis` session API and its typed artifacts; the stage structs and \
            this composition trait are kept only so pre-session code keeps compiling"
)]
pub trait Stage<In> {
    /// The stage's output artefact.
    type Out;

    /// The stage's name in reports and logs.
    fn name(&self) -> &'static str;

    /// Applies the stage.
    fn run(&self, input: In) -> Self::Out;
}

#[allow(deprecated)]
impl<'a> Stage<&'a Mealy> for SolveStage {
    type Out = Solved;

    fn name(&self) -> &'static str {
        SolveStage::NAME
    }

    fn run(&self, machine: &'a Mealy) -> Solved {
        self.apply(machine)
    }
}

#[allow(deprecated)]
impl<'a> Stage<(&'a Mealy, &'a Realization)> for EncodeStage {
    type Out = EncodedPipeline;

    fn name(&self) -> &'static str {
        EncodeStage::NAME
    }

    fn run(&self, (machine, realization): (&'a Mealy, &'a Realization)) -> EncodedPipeline {
        self.apply(machine, realization)
    }
}

#[allow(deprecated)]
impl<'a> Stage<&'a EncodedPipeline> for LogicStage {
    type Out = PipelineLogic;

    fn name(&self) -> &'static str {
        LogicStage::NAME
    }

    fn run(&self, encoded: &'a EncodedPipeline) -> PipelineLogic {
        self.apply(encoded)
    }
}

#[allow(deprecated)]
impl<'a> Stage<&'a PipelineLogic> for BistStage {
    type Out = SelfTestResult;

    fn name(&self) -> &'static str {
        BistStage::NAME
    }

    fn run(&self, pipeline: &'a PipelineLogic) -> SelfTestResult {
        self.apply(pipeline)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the tests pin the deprecated stage shims' behaviour
mod tests {
    use super::*;
    use stc_fsm::paper_example;

    /// Generic driver proving the stages compose through the [`Stage`] trait.
    fn drive<S1, S2, S3, S4>(machine: &Mealy, s1: &S1, s2: &S2, s3: &S3, s4: &S4) -> SelfTestResult
    where
        S1: for<'a> Stage<&'a Mealy, Out = Solved>,
        S2: for<'a> Stage<(&'a Mealy, &'a Realization), Out = EncodedPipeline>,
        S3: for<'a> Stage<&'a EncodedPipeline, Out = PipelineLogic>,
        S4: for<'a> Stage<&'a PipelineLogic, Out = SelfTestResult>,
    {
        let solved = s1.run(machine);
        let encoded = s2.run((machine, &solved.realization));
        let logic = s3.run(&encoded);
        s4.run(&logic)
    }

    #[test]
    fn stages_compose_generically() {
        let machine = paper_example();
        let result = drive(
            &machine,
            &SolveStage::default(),
            &EncodeStage::default(),
            &LogicStage::default(),
            &BistStage::new(64),
        );
        assert_eq!(result.session1.patterns, 64);
        assert!(result.overall_coverage() > 0.5);
    }

    #[test]
    fn stage_names_are_distinct() {
        let names = [
            Stage::<&Mealy>::name(&SolveStage::default()),
            Stage::<(&Mealy, &Realization)>::name(&EncodeStage::default()),
            Stage::<&EncodedPipeline>::name(&LogicStage::default()),
            Stage::<&PipelineLogic>::name(&BistStage::default()),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
