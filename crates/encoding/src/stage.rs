//! The state-assignment stage: the `stc-encoding` entry point of the batch
//! pipeline.
//!
//! See `stc_synth::SolveStage` for the stage convention shared by all the
//! flow crates; `stc-pipeline` composes the stages into a corpus-level
//! pipeline.

use crate::code::EncodingStrategy;
use crate::encoded::{EncodedMachine, EncodedPipeline};
use stc_fsm::Mealy;
use stc_synth::Realization;

/// The state-assignment stage: realization → bit-level pipeline view.
///
/// # Example
///
/// ```
/// # #![allow(deprecated)]
/// use stc_encoding::{EncodeStage, EncodingStrategy};
/// use stc_fsm::paper_example;
/// use stc_synth::SolveStage;
///
/// let machine = paper_example();
/// let solved = SolveStage::default().apply(&machine);
/// let encoded = EncodeStage::new(EncodingStrategy::Binary).apply(&machine, &solved.realization);
/// assert_eq!(encoded.register_bits(), 2);
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use the `stc::Synthesis` session API (`Synthesis::builder()…build()`); \
            the per-crate stage structs are kept only so pre-session code keeps compiling"
)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodeStage {
    /// State-assignment strategy for register contents.
    pub strategy: EncodingStrategy,
}

#[allow(deprecated)]
impl EncodeStage {
    /// The stage's name in pipeline reports and logs.
    pub const NAME: &'static str = "encode";

    /// Creates the stage with the given encoding strategy.
    #[must_use]
    pub fn new(strategy: EncodingStrategy) -> Self {
        Self { strategy }
    }

    /// Encodes a pipeline realization into its bit-level view (Fig. 4).
    #[must_use]
    pub fn apply(&self, machine: &Mealy, realization: &Realization) -> EncodedPipeline {
        EncodedPipeline::new(machine, realization, self.strategy)
    }

    /// Encodes a monolithic controller (Fig. 1), used by the architecture
    /// comparison baseline.
    #[must_use]
    pub fn apply_monolithic(&self, machine: &Mealy) -> EncodedMachine {
        EncodedMachine::new(machine, self.strategy)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stc_fsm::paper_example;
    use stc_synth::SolveStage;

    #[test]
    fn encode_stage_matches_the_direct_constructors() {
        let machine = paper_example();
        let solved = SolveStage::default().apply(&machine);
        let stage = EncodeStage::new(EncodingStrategy::Binary);
        assert_eq!(
            stage.apply(&machine, &solved.realization),
            EncodedPipeline::new(&machine, &solved.realization, EncodingStrategy::Binary)
        );
        assert_eq!(
            stage.apply_monolithic(&machine),
            EncodedMachine::new(&machine, EncodingStrategy::Binary)
        );
    }
}
