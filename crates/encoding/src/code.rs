//! State-code assignment strategies.

use serde::{Deserialize, Serialize};
use stc_fsm::Mealy;
use std::collections::HashMap;

/// A binary code assignment for a set of `items` symbols.
///
/// Codes are `width`-bit values stored in a `u64`; every item has a distinct
/// code.  For state assignment the items are the machine's states; the same
/// type is reused for input and output alphabets.
///
/// # Example
///
/// ```
/// use stc_encoding::{Encoding, EncodingStrategy};
///
/// let enc = Encoding::sequential(5, EncodingStrategy::Binary);
/// assert_eq!(enc.width(), 3);
/// assert_eq!(enc.code_of(4), 0b100);
/// assert_eq!(enc.decode(0b100), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoding {
    width: u32,
    codes: Vec<u64>,
    decode: HashMap<u64, usize>,
}

/// The available code-assignment strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EncodingStrategy {
    /// Item `i` gets code `i` in `⌈log2 n⌉` bits.
    #[default]
    Binary,
    /// Item `i` gets the `i`-th Gray code in `⌈log2 n⌉` bits (adjacent items
    /// differ in one bit).
    Gray,
    /// Item `i` gets a one-hot code of `n` bits.
    OneHot,
    /// Minimum-width code assignment that greedily gives adjacent (frequently
    /// co-transitioning) states codes at small Hamming distance.  Only
    /// meaningful for state encodings built with [`Encoding::for_states`];
    /// falls back to [`EncodingStrategy::Binary`] otherwise.
    AdjacencyGreedy,
}

impl Encoding {
    /// Builds an encoding for items `0..items` without looking at a machine.
    ///
    /// [`EncodingStrategy::AdjacencyGreedy`] degenerates to binary here.
    ///
    /// # Panics
    ///
    /// Panics if `items` is 0 or exceeds `2^63`.
    #[must_use]
    pub fn sequential(items: usize, strategy: EncodingStrategy) -> Self {
        assert!(items > 0, "cannot encode an empty alphabet");
        let codes: Vec<u64> = match strategy {
            EncodingStrategy::OneHot => (0..items).map(|i| 1u64 << i).collect(),
            EncodingStrategy::Gray => (0..items).map(|i| (i ^ (i >> 1)) as u64).collect(),
            EncodingStrategy::Binary | EncodingStrategy::AdjacencyGreedy => {
                (0..items).map(|i| i as u64).collect()
            }
        };
        let width = match strategy {
            EncodingStrategy::OneHot => items as u32,
            _ => crate::min_width(items),
        };
        Self::from_codes(width, codes)
    }

    /// Builds a state encoding for a machine using the given strategy.
    ///
    /// The adjacency-greedy strategy orders states by how often they appear as
    /// successors of a common predecessor (a lightweight stand-in for
    /// MUSTANG/NOVA-style heuristics) and assigns Gray codes along that order,
    /// so strongly coupled states get codes at Hamming distance 1.
    #[must_use]
    pub fn for_states(machine: &Mealy, strategy: EncodingStrategy) -> Self {
        let n = machine.num_states();
        match strategy {
            EncodingStrategy::AdjacencyGreedy => {
                let order = adjacency_order(machine);
                let width = crate::min_width(n);
                let mut codes = vec![0u64; n];
                for (rank, &state) in order.iter().enumerate() {
                    codes[state] = (rank ^ (rank >> 1)) as u64;
                }
                Self::from_codes(width, codes)
            }
            other => Self::sequential(n, other),
        }
    }

    fn from_codes(width: u32, codes: Vec<u64>) -> Self {
        let mut decode = HashMap::with_capacity(codes.len());
        for (i, &c) in codes.iter().enumerate() {
            let previous = decode.insert(c, i);
            assert!(previous.is_none(), "duplicate code {c:#b}");
        }
        Self {
            width,
            codes,
            decode,
        }
    }

    /// Number of bits per code word.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of encoded items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` if no items are encoded (never the case for encodings
    /// produced by the constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn code_of(&self, i: usize) -> u64 {
        self.codes[i]
    }

    /// The bits of item `i`'s code, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bits_of(&self, i: usize) -> Vec<bool> {
        let code = self.codes[i];
        (0..self.width)
            .rev()
            .map(|b| (code >> b) & 1 == 1)
            .collect()
    }

    /// The item with the given code, if any.
    #[must_use]
    pub fn decode(&self, code: u64) -> Option<usize> {
        self.decode.get(&code).copied()
    }

    /// Total Hamming weight of all transitions of `machine` under this state
    /// encoding: the sum over transitions of the Hamming distance between the
    /// present- and next-state codes.  A rough proxy for switching activity
    /// and logic complexity, used to compare strategies.
    ///
    /// # Panics
    ///
    /// Panics if the encoding does not cover the machine's states.
    #[must_use]
    pub fn transition_hamming_cost(&self, machine: &Mealy) -> u64 {
        assert_eq!(self.len(), machine.num_states());
        machine
            .transitions()
            .map(|(s, _, n, _)| (self.codes[s] ^ self.codes[n]).count_ones() as u64)
            .sum()
    }
}

/// Orders states so that states sharing predecessors/successors are adjacent.
fn adjacency_order(machine: &Mealy) -> Vec<usize> {
    let n = machine.num_states();
    // Affinity between states: number of (predecessor, input) pairs they share
    // plus the number of direct transitions between them.
    let mut affinity = vec![vec![0u32; n]; n];
    for s in 0..n {
        for i in 0..machine.num_inputs() {
            let a = machine.next_state(s, i);
            affinity[s][a] += 1;
            affinity[a][s] += 1;
            for j in (i + 1)..machine.num_inputs() {
                let b = machine.next_state(s, j);
                if a != b {
                    affinity[a][b] += 1;
                    affinity[b][a] += 1;
                }
            }
        }
    }
    // Greedy chain: start from the reset state, repeatedly append the
    // unvisited state with the highest affinity to the last one.
    let mut order = vec![machine.reset_state()];
    let mut visited = vec![false; n];
    visited[machine.reset_state()] = true;
    while order.len() < n {
        let last = *order.last().expect("order is non-empty");
        let next = (0..n)
            .filter(|&s| !visited[s])
            .max_by_key(|&s| affinity[last][s])
            .expect("unvisited state exists");
        visited[next] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use stc_fsm::paper_example;

    #[test]
    fn binary_and_gray_are_minimum_width() {
        for n in [2usize, 3, 4, 5, 8, 9, 16] {
            let b = Encoding::sequential(n, EncodingStrategy::Binary);
            let g = Encoding::sequential(n, EncodingStrategy::Gray);
            assert_eq!(b.width(), crate::min_width(n));
            assert_eq!(g.width(), crate::min_width(n));
            assert_eq!(b.len(), n);
        }
    }

    #[test]
    fn gray_codes_of_consecutive_items_differ_in_one_bit() {
        let g = Encoding::sequential(8, EncodingStrategy::Gray);
        for i in 0..7 {
            let d = (g.code_of(i) ^ g.code_of(i + 1)).count_ones();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn one_hot_uses_one_bit_per_item() {
        let oh = Encoding::sequential(5, EncodingStrategy::OneHot);
        assert_eq!(oh.width(), 5);
        for i in 0..5 {
            assert_eq!(oh.code_of(i).count_ones(), 1);
        }
    }

    #[test]
    fn codes_are_distinct_and_decodable() {
        for strat in [
            EncodingStrategy::Binary,
            EncodingStrategy::Gray,
            EncodingStrategy::OneHot,
        ] {
            let e = Encoding::sequential(9, strat);
            for i in 0..9 {
                assert_eq!(e.decode(e.code_of(i)), Some(i));
            }
            assert_eq!(e.decode(u64::MAX), None);
        }
    }

    #[test]
    fn bits_of_matches_code_of() {
        let e = Encoding::sequential(6, EncodingStrategy::Binary);
        let bits = e.bits_of(5);
        assert_eq!(bits, vec![true, false, true]);
    }

    #[test]
    fn adjacency_greedy_covers_all_states_once() {
        let m = paper_example();
        let e = Encoding::for_states(&m, EncodingStrategy::AdjacencyGreedy);
        assert_eq!(e.len(), 4);
        assert_eq!(e.width(), 2);
        let mut seen: Vec<u64> = (0..4).map(|s| e.code_of(s)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn adjacency_greedy_is_no_worse_than_binary_on_the_example() {
        let m = paper_example();
        let greedy = Encoding::for_states(&m, EncodingStrategy::AdjacencyGreedy);
        let binary = Encoding::for_states(&m, EncodingStrategy::Binary);
        assert!(greedy.transition_hamming_cost(&m) <= binary.transition_hamming_cost(&m) + 2);
    }

    #[test]
    #[should_panic(expected = "empty alphabet")]
    fn empty_alphabet_is_rejected() {
        let _ = Encoding::sequential(0, EncodingStrategy::Binary);
    }
}
