//! State assignment (encoding) for finite state machines and pipeline
//! realizations.
//!
//! After the FSM-level transformation of `stc-synth` produces a realization
//! supporting a self-testable structure, "state coding and logic minimization
//! are then applied to this realization" (section 1 of the paper).  This crate
//! performs the first of those two steps:
//!
//! * [`Encoding`] / [`EncodingStrategy`] — binary, Gray, one-hot and a greedy
//!   adjacency-based minimum-width assignment;
//! * [`EncodedMachine`] — the bit-level combinational function
//!   `C : (inputs, state) → (next state, outputs)` of a monolithic controller
//!   (Fig. 1);
//! * [`EncodedPipeline`] — the bit-level functions `C1`, `C2` and the output
//!   logic of the pipeline structure (Fig. 4).
//!
//! The encoded forms are consumed by `stc-logic` for two-level minimisation
//! and netlist generation.
//!
//! # Example
//!
//! ```
//! use stc_encoding::{EncodedMachine, EncodingStrategy};
//! use stc_fsm::paper_example;
//!
//! let machine = paper_example();
//! let encoded = EncodedMachine::new(&machine, EncodingStrategy::Binary);
//! assert_eq!(encoded.state_bits, 2);
//! assert_eq!(encoded.rows.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod encoded;
mod stage;

pub use code::{Encoding, EncodingStrategy};
pub use encoded::{EncodedMachine, EncodedPipeline, EncodedRow};
#[allow(deprecated)]
pub use stage::EncodeStage;

/// Minimum number of bits needed to give `items` symbols distinct codes:
/// `⌈log2(items)⌉`, with `min_width(0) = min_width(1) = 0`.
#[must_use]
pub fn min_width(items: usize) -> u32 {
    if items <= 1 {
        0
    } else {
        usize::BITS - (items - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_width_boundaries() {
        assert_eq!(min_width(0), 0);
        assert_eq!(min_width(1), 0);
        assert_eq!(min_width(2), 1);
        assert_eq!(min_width(3), 2);
        assert_eq!(min_width(4), 2);
        assert_eq!(min_width(5), 3);
        assert_eq!(min_width(16), 4);
        assert_eq!(min_width(17), 5);
    }
}
