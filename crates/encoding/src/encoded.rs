//! Encoded (bit-level) views of machines and pipeline realizations.
//!
//! Logic synthesis works on Boolean functions, so the symbolic machines of
//! `stc-fsm` and the factor tables of `stc-synth` are first lowered to
//! bit-level truth tables: every (present-state code, input code) pair maps to
//! a (next-state code, output code) pair.  [`EncodedMachine`] does this for a
//! monolithic controller (Fig. 1 of the paper); [`EncodedPipeline`] does it
//! for the two factor blocks `C1`, `C2` and the output logic of the
//! self-testable structure (Fig. 4).

use crate::code::{Encoding, EncodingStrategy};
use serde::{Deserialize, Serialize};
use stc_fsm::Mealy;
use stc_synth::Realization;

/// One row of an encoded transition table: fully specified input bits mapping
/// to fully specified output bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedRow {
    /// Input bits (most significant first): primary inputs followed by the
    /// present-state code.
    pub inputs: Vec<bool>,
    /// Output bits (most significant first): next-state code followed by the
    /// primary-output code.
    pub outputs: Vec<bool>,
}

/// A bit-level view of a monolithic controller: the combinational function
/// `C : (inputs, state) → (next state, outputs)` of Fig. 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedMachine {
    /// Machine name.
    pub name: String,
    /// Number of primary-input bits.
    pub input_bits: u32,
    /// Number of state bits (flip-flops of register `R`).
    pub state_bits: u32,
    /// Number of primary-output bits.
    pub output_bits: u32,
    /// The state encoding used.
    pub state_encoding: Encoding,
    /// The input encoding used.
    pub input_encoding: Encoding,
    /// The output encoding used.
    pub output_encoding: Encoding,
    /// One row per (state, input symbol) pair.
    pub rows: Vec<EncodedRow>,
}

impl EncodedMachine {
    /// Encodes `machine` with the given state-assignment strategy (inputs and
    /// outputs are always binary-encoded by index).
    #[must_use]
    pub fn new(machine: &Mealy, strategy: EncodingStrategy) -> Self {
        let state_encoding = Encoding::for_states(machine, strategy);
        let input_encoding = Encoding::sequential(machine.num_inputs(), EncodingStrategy::Binary);
        let output_encoding = Encoding::sequential(machine.num_outputs(), EncodingStrategy::Binary);
        let mut rows = Vec::with_capacity(machine.num_states() * machine.num_inputs());
        for (s, i, next, out) in machine.transitions() {
            let mut inputs = input_encoding.bits_of(i);
            inputs.extend(state_encoding.bits_of(s));
            let mut outputs = state_encoding.bits_of(next);
            outputs.extend(output_encoding.bits_of(out));
            rows.push(EncodedRow { inputs, outputs });
        }
        Self {
            name: machine.name().to_string(),
            input_bits: input_encoding.width(),
            state_bits: state_encoding.width(),
            output_bits: output_encoding.width(),
            state_encoding,
            input_encoding,
            output_encoding,
            rows,
        }
    }

    /// Number of input bits of the combinational block `C`
    /// (primary inputs + state bits).
    #[must_use]
    pub fn combinational_inputs(&self) -> u32 {
        self.input_bits + self.state_bits
    }

    /// Number of output bits of the combinational block `C`
    /// (next-state bits + primary outputs).
    #[must_use]
    pub fn combinational_outputs(&self) -> u32 {
        self.state_bits + self.output_bits
    }
}

/// A bit-level view of a pipeline realization: the two combinational blocks
/// `C1 : (inputs, R1) → R2` and `C2 : (inputs, R2) → R1` plus the output
/// logic `λ : (inputs, R1, R2) → outputs` of Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedPipeline {
    /// Machine name.
    pub name: String,
    /// Number of primary-input bits.
    pub input_bits: u32,
    /// Register `R1` width (`⌈log2 |S1|⌉`, at least 1).
    pub r1_bits: u32,
    /// Register `R2` width (`⌈log2 |S2|⌉`, at least 1).
    pub r2_bits: u32,
    /// Number of primary-output bits.
    pub output_bits: u32,
    /// Encoding of the `S/π` blocks held in `R1`.
    pub r1_encoding: Encoding,
    /// Encoding of the `S/τ` blocks held in `R2`.
    pub r2_encoding: Encoding,
    /// Rows of `C1`: inputs are (primary inputs, R1), outputs are R2.
    pub c1_rows: Vec<EncodedRow>,
    /// Rows of `C2`: inputs are (primary inputs, R2), outputs are R1.
    pub c2_rows: Vec<EncodedRow>,
    /// Rows of the output logic: inputs are (primary inputs, R1, R2), outputs
    /// are the primary outputs.  Product states with empty block intersection
    /// are omitted (their output is a don't-care realized as the default).
    pub output_rows: Vec<EncodedRow>,
}

impl EncodedPipeline {
    /// Encodes a pipeline realization.
    ///
    /// Register contents use binary encodings of the block indices; registers
    /// are at least one bit wide so that degenerate single-block factors still
    /// have a physical register to test.
    #[must_use]
    pub fn new(machine: &Mealy, realization: &Realization, strategy: EncodingStrategy) -> Self {
        let _ = strategy; // block indices carry no adjacency information; binary is used
        let input_encoding = Encoding::sequential(machine.num_inputs(), EncodingStrategy::Binary);
        let output_encoding = Encoding::sequential(machine.num_outputs(), EncodingStrategy::Binary);
        let r1_encoding = Encoding::sequential(realization.s1_len(), EncodingStrategy::Binary);
        let r2_encoding = Encoding::sequential(realization.s2_len(), EncodingStrategy::Binary);
        let r1_bits = r1_encoding.width().max(1);
        let r2_bits = r2_encoding.width().max(1);
        let k = machine.num_inputs();

        let pad = |mut bits: Vec<bool>, width: u32| {
            while (bits.len() as u32) < width {
                bits.insert(0, false);
            }
            bits
        };

        let mut c1_rows = Vec::with_capacity(realization.s1_len() * k);
        for b1 in 0..realization.s1_len() {
            for i in 0..k {
                let mut inputs = input_encoding.bits_of(i);
                inputs.extend(pad(r1_encoding.bits_of(b1), r1_bits));
                let outputs = pad(
                    r2_encoding.bits_of(realization.tables.delta1[b1][i]),
                    r2_bits,
                );
                c1_rows.push(EncodedRow { inputs, outputs });
            }
        }
        let mut c2_rows = Vec::with_capacity(realization.s2_len() * k);
        for b2 in 0..realization.s2_len() {
            for i in 0..k {
                let mut inputs = input_encoding.bits_of(i);
                inputs.extend(pad(r2_encoding.bits_of(b2), r2_bits));
                let outputs = pad(
                    r1_encoding.bits_of(realization.tables.delta2[b2][i]),
                    r1_bits,
                );
                c2_rows.push(EncodedRow { inputs, outputs });
            }
        }
        let mut output_rows = Vec::new();
        for b1 in 0..realization.s1_len() {
            for b2 in 0..realization.s2_len() {
                for i in 0..k {
                    let Some(out) = realization.tables.lambda[b1][b2][i] else {
                        continue;
                    };
                    let mut inputs = input_encoding.bits_of(i);
                    inputs.extend(pad(r1_encoding.bits_of(b1), r1_bits));
                    inputs.extend(pad(r2_encoding.bits_of(b2), r2_bits));
                    output_rows.push(EncodedRow {
                        inputs,
                        outputs: output_encoding.bits_of(out),
                    });
                }
            }
        }
        Self {
            name: machine.name().to_string(),
            input_bits: input_encoding.width(),
            r1_bits,
            r2_bits,
            output_bits: output_encoding.width(),
            r1_encoding,
            r2_encoding,
            c1_rows,
            c2_rows,
            output_rows,
        }
    }

    /// Total register bits of the pipeline structure (`R1` + `R2`).
    #[must_use]
    pub fn register_bits(&self) -> u32 {
        self.r1_bits + self.r2_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stc_fsm::paper_example;
    use stc_synth::solve;

    #[test]
    fn encoded_machine_has_one_row_per_transition() {
        let m = paper_example();
        let e = EncodedMachine::new(&m, EncodingStrategy::Binary);
        assert_eq!(e.rows.len(), 8);
        assert_eq!(e.input_bits, 1);
        assert_eq!(e.state_bits, 2);
        assert_eq!(e.output_bits, 1);
        assert_eq!(e.combinational_inputs(), 3);
        assert_eq!(e.combinational_outputs(), 3);
        for row in &e.rows {
            assert_eq!(row.inputs.len(), 3);
            assert_eq!(row.outputs.len(), 3);
        }
    }

    #[test]
    fn encoded_machine_rows_match_the_transition_table() {
        let m = paper_example();
        let e = EncodedMachine::new(&m, EncodingStrategy::Binary);
        // Row for (state 3, input 1): next = 1, output = 1.
        let row = &e.rows[3 * 2 + 1];
        assert_eq!(row.inputs, vec![true, true, true]); // input 1, state code 11
        assert_eq!(row.outputs, vec![false, true, true]); // next 01, output 1
    }

    #[test]
    fn encoded_pipeline_matches_the_realization_tables() {
        let m = paper_example();
        let outcome = solve(&m);
        let r = outcome.best.realize(&m);
        let e = EncodedPipeline::new(&m, &r, EncodingStrategy::Binary);
        assert_eq!(e.r1_bits, 1);
        assert_eq!(e.r2_bits, 1);
        assert_eq!(e.register_bits(), 2);
        assert_eq!(e.c1_rows.len(), r.s1_len() * m.num_inputs());
        assert_eq!(e.c2_rows.len(), r.s2_len() * m.num_inputs());
        // Every output row corresponds to a non-empty block intersection.
        assert_eq!(e.output_rows.len(), 8);
        for row in &e.c1_rows {
            assert_eq!(row.inputs.len() as u32, e.input_bits + e.r1_bits);
            assert_eq!(row.outputs.len() as u32, e.r2_bits);
        }
    }

    #[test]
    fn single_block_factors_still_get_a_register_bit() {
        // A machine whose best decomposition collapses one side to a single
        // block (universal partition) must still produce a 1-bit register.
        let mut b = stc_fsm::Mealy::builder("const", 2, 1, 2);
        b.transition(0, 0, 0, 0).unwrap();
        b.transition(1, 0, 0, 1).unwrap();
        let m = b.build().unwrap();
        let outcome = solve(&m);
        let r = outcome.best.realize(&m);
        let e = EncodedPipeline::new(&m, &r, EncodingStrategy::Binary);
        assert!(e.r1_bits >= 1);
        assert!(e.r2_bits >= 1);
    }
}
