//! Offline stand-in for the `rand` crate.
//!
//! The workspace is built in an environment without access to crates.io, so
//! this vendored crate provides the *subset* of the `rand` 0.8 API that the
//! `stc` workspace actually uses:
//!
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!
//! The implementation is deterministic for a given seed, which is all the
//! workspace relies on (reproducible machine generation and property tests).
//! It is **not** a cryptographic generator and makes no cross-version
//! reproducibility promise with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for random value generation.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports the integer range types the workspace uses
    /// (`a..b` and `a..=b` over the primitive integer types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled from uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Types with a `Standard` uniform distribution over the whole domain.
pub trait Standard {
    /// Draws one uniform sample.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the small ranges used here.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(draw)
            }
        }
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The provided generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (the same seeding scheme the real `rand` crate documents
    /// for `seed_from_u64`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=255);
            let _ = y;
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn covers_the_whole_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
