//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a compact subset of the proptest API:
//! range and tuple strategies, `any::<T>()`, `prop_map`/`prop_flat_map`,
//! `proptest::collection::vec`, the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//! `prop_assert!`/`prop_assert_eq!` macros.  This vendored crate implements
//! exactly that subset on top of a deterministic RNG.
//!
//! Differences from real proptest, deliberately accepted for offline builds:
//!
//! * **No shrinking** — a failing case reports its case number and message
//!   but is not minimised.
//! * **Deterministic generation** — each test function derives its RNG seed
//!   from its own name, so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: strategies generate
    /// final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes this strategy (object-safe generation).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A boxed, dynamically dispatched strategy.
    pub struct BoxedStrategy<V>(Box<dyn ErasedStrategy<Value = V>>);

    trait ErasedStrategy {
        type Value;
        fn erased_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> ErasedStrategy for S {
        type Value = S::Value;
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.erased_generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy (counterpart of
    /// proptest's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_word() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_word() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns a strategy generating arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn from `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration, the deterministic RNG and failure reporting.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Counterpart of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Creates a deterministic RNG whose seed is derived from `name`
        /// (typically the test function's name), so every run generates the
        /// same case sequence.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name; any stable hash works.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// Returns the next raw 64-bit word.
        pub fn next_word(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }

    /// A failed property, carrying the rejection message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! The glob-import surface used by the workspace's property tests.

    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by test functions
/// of the form `fn name(pat in strategy, ...) { body }`.  The body may use
/// `prop_assert!`-family macros and `return Ok(())` for early exit.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Rejects the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Rejects the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Rejects the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let strat = (2usize..9, 1u32..4, any::<u64>());
        for _ in 0..200 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!((2..9).contains(&a));
            assert!((1..4).contains(&b));
        }
    }

    #[test]
    fn vec_sizes_respect_the_spec() {
        let mut rng = TestRng::deterministic("vec_sizes");
        let fixed = collection::vec(0usize..5, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = collection::vec(0usize..5, 0..20);
        for _ in 0..100 {
            assert!(ranged.generate(&mut rng).len() < 20);
        }
        let inclusive = collection::vec(0u8..3, 0..=4);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_runs_and_asserts(x in 0usize..100, v in collection::vec(0usize..10, 0..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            if x > 1000 {
                // Exercise the early-return path the real macro supports.
                return Ok(());
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(true);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = TestRng::deterministic("flat_map");
        let strat = (2usize..5).prop_flat_map(|n| collection::vec(0..n, n));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }
}
