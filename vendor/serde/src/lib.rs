//! Offline stand-in for `serde`.
//!
//! The workspace annotates many types with `#[derive(Serialize, Deserialize)]`
//! but never actually serializes anything through serde (the experiment
//! binaries hand-format their text and JSON output).  This vendored crate
//! therefore provides the traits as *markers* with blanket implementations,
//! and re-exports no-op derives, so the annotations compile unchanged in an
//! environment without crates.io access.  Swapping the real `serde` back in
//! later requires only a `Cargo.toml` change.

#![forbid(unsafe_code)]

/// Marker counterpart of `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
