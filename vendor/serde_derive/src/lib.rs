//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate provides blanket implementations of its marker
//! `Serialize`/`Deserialize` traits, so the derives here only need to exist —
//! they expand to nothing.  This keeps `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compiling without crates.io access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the trait is satisfied by a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the trait is satisfied by a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
