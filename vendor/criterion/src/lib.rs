//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API used by the workspace's bench
//! targets — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery.
//!
//! Behaviour under the two cargo entry points:
//!
//! * `cargo bench` — each benchmark is warmed up once, then timed for up to
//!   [`MAX_SAMPLES`] iterations or [`TIME_BUDGET`], whichever comes first;
//!   the reported `mean_ns` is a *trimmed* mean (the slowest quarter of the
//!   samples is discarded as one-sided scheduler noise) so the perf gate
//!   does not flap on machine load.  A summary table is printed and a
//!   machine-readable baseline is written to `BENCH_<bench-name>.json` in
//!   the current directory.
//! * `cargo test` (which runs `harness = false` bench targets with the
//!   `--test` flag) — every benchmark closure is executed exactly once so
//!   the workload itself is smoke-tested, and no baseline file is written.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hard cap on timed iterations per benchmark.
pub const MAX_SAMPLES: u32 = 40;

/// Wall-clock budget per benchmark.
pub const TIME_BUDGET: Duration = Duration::from_millis(300);

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark name (`group/function/parameter`).
    pub name: String,
    /// Timed iterations.
    pub iterations: u32,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, name: String, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.iterations > 0 {
            let mean_ns = bencher.elapsed.as_nanos() as f64 / f64::from(bencher.iterations);
            if !self.test_mode {
                eprintln!(
                    "bench {name:<50} {:>12.0} ns/iter ({} iters)",
                    mean_ns, bencher.iterations
                );
            }
            self.results.push(Measurement {
                name,
                iterations: bencher.iterations,
                mean_ns,
            });
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Writes the collected measurements as a JSON baseline file named
    /// `BENCH_<stem>.json` in the current directory — or, when the
    /// `STC_BENCH_DIR` environment variable is set, in that directory
    /// (`stc bench-check` uses this to collect fresh measurements without
    /// clobbering the committed baselines).  No-op in test mode.
    pub fn write_baseline(&self, stem: &str) {
        if self.test_mode || self.results.is_empty() {
            return;
        }
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{sep}\n",
                m.name.replace('"', "'"),
                m.mean_ns,
                m.iterations
            ));
        }
        json.push_str("  ]\n}\n");
        let mut path = std::path::PathBuf::new();
        if let Some(dir) = std::env::var_os("STC_BENCH_DIR") {
            path.push(dir);
            if let Err(e) = std::fs::create_dir_all(&path) {
                eprintln!("warning: could not create {}: {e}", path.display());
            }
        }
        path.push(format!("BENCH_{stem}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("baseline written to {}", path.display());
        }
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores the sample count
    /// and uses its own iteration/time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a routine against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(name, |b| f(b, input));
        self
    }

    /// Benchmarks a routine with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.criterion.run_one(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after a `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`-style calls.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// The per-benchmark timing driver handed to routines.
pub struct Bencher {
    test_mode: bool,
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, storing the measurement in the bencher.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iterations = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        let mut samples: Vec<Duration> = Vec::with_capacity(MAX_SAMPLES as usize);
        while (samples.len() as u32) < MAX_SAMPLES && budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
        }
        // Trimmed mean: scheduler noise is one-sided (it only ever makes a
        // sample slower), so the slowest quarter of the samples is dropped
        // before averaging.  This keeps the perf-regression gate from
        // flapping on machine load without hiding real slowdowns, which
        // shift the whole distribution.
        samples.sort_unstable();
        let keep = (samples.len() - samples.len() / 4).max(1);
        samples.truncate(keep);
        self.iterations = samples.len() as u32;
        self.elapsed = samples.iter().sum();
    }
}

/// Opaque value barrier preventing the optimiser from deleting the workload.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions (simple-form criterion macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            let stem = std::env::args()
                .next()
                .and_then(|argv0| {
                    std::path::Path::new(&argv0)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .map(|stem| match stem.rsplit_once('-') {
                    // Strip cargo's `-<hash>` suffix from the executable name.
                    Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
                        base.to_string()
                    }
                    _ => stem,
                })
                .unwrap_or_else(|| "bench".to_string());
            criterion.write_baseline(&stem);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
        }
        group.finish();
    }

    #[test]
    fn measures_and_names_benchmarks() {
        let mut c = Criterion {
            test_mode: false,
            results: Vec::new(),
        };
        sample_bench(&mut c);
        let names: Vec<&str> = c.results.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["sum_1k", "grouped/10", "grouped/100"]);
        assert!(c
            .results
            .iter()
            .all(|m| m.iterations >= 1 && m.mean_ns >= 0.0));
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion {
            test_mode: true,
            results: Vec::new(),
        };
        let mut runs = 0u32;
        c.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("lattice", "tav").0, "lattice/tav");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
