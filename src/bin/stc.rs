//! The `stc` command-line interface: batch synthesis of self-testable
//! controllers over a corpus, plus the perf-regression gate used in CI.
//!
//! * `stc run` — drive the full flow (OSTR solve → encode → logic → BIST)
//!   over the embedded benchmark suite or a directory of KISS2 files, in
//!   parallel, and emit a deterministic JSON report.
//! * `stc bench-check` — run the bench harness and compare against the
//!   committed `crates/bench/BENCH_*.json` baselines with a relative
//!   tolerance; non-zero exit on regression.
//! * `stc list` — list the machines of a corpus.
//!
//! See the README for the JSON report schema and the re-baselining workflow.

use stc::pipeline::{
    compare_benchmarks, embedded_corpus, filter_by_names, format_summary_table, kiss2_corpus,
    load_baseline_dir, run_corpus, search_stats_json, BenchMeasurement, CorpusEntry,
    PipelineConfig, PipelineError, SuiteRun,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
stc — synthesis of self-testable controllers (Hellebrand & Wunderlich, EURO-DAC '94)

USAGE:
    stc run [OPTIONS]            run the batch pipeline and print a JSON report
    stc list [OPTIONS]           list the machines of the selected corpus
    stc bench-check [OPTIONS]    compare bench results against committed baselines
    stc help                     print this message

CORPUS OPTIONS (run, list):
    --suite embedded             the embedded 13-machine benchmark suite (default)
    --kiss2 <DIR>                load every *.kiss2 / *.kiss file of a directory
    --machine <NAME>             restrict to the named machine (repeatable)

RUN OPTIONS:
    --jobs <N>                   worker threads (default: available parallelism;
                                 1 selects the serial fallback — same output)
    --solver-jobs <N>            threads for the OSTR solver's parallel subtree
                                 exploration per machine (default 1; any value
                                 produces byte-identical results)
    --no-bnb                     disable the solver's branch-and-bound pruning
                                 (changes search statistics, not the reported
                                 solution; tie corner: DESIGN.md §5)
    --out <FILE>                 write the JSON report to FILE instead of stdout
    --stats-out <FILE>           also write the per-machine search-effort stats
                                 (the CI search-stats gate artefact) to FILE
    --max-nodes <N>              OSTR solver node budget per machine (default 100000)
    --patterns <N>               BIST patterns per self-test session (default 256)
    --gate-states <N>            max |S| for the gate-level stages (default 10)
    --gate-inputs <N>            max input-alphabet size for gate level (default 16)
    --no-minimize                skip two-level minimisation
    --timeout-secs <S>           per-machine wall-clock safety net, checked between
                                 stages (default: off; using it can make reports
                                 depend on machine speed)

BENCH-CHECK OPTIONS:
    --baseline-dir <DIR>         committed baselines (default: crates/bench)
    --measured-dir <DIR>         pre-existing fresh BENCH_*.json files; when absent,
                                 `cargo bench -p stc-bench` runs in target/bench-check
    --threshold <F>              relative regression threshold, 0.30 = ±30%
                                 (default 0.30; --tolerance is an alias)

The JSON report contains no wall-clock values: for a fixed corpus and options
it is byte-identical for any --jobs value, so CI diffs it against a golden
file.  Timings go to stderr.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "list" => cmd_list(rest),
        "bench-check" => cmd_bench_check(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Shared corpus selection flags of `run` and `list`.
struct CorpusArgs {
    suite: String,
    kiss2: Option<PathBuf>,
    machines: Vec<String>,
}

impl CorpusArgs {
    fn load(&self) -> Result<(String, Vec<CorpusEntry>), String> {
        let (label, corpus) = match &self.kiss2 {
            Some(dir) => (
                dir.display().to_string(),
                kiss2_corpus(dir).map_err(|e| e.to_string())?,
            ),
            None => {
                if self.suite != "embedded" {
                    return Err(format!(
                        "unknown suite '{}' (only 'embedded' is built in; use --kiss2 for \
                         external corpora)",
                        self.suite
                    ));
                }
                ("embedded".to_string(), embedded_corpus())
            }
        };
        let corpus = if self.machines.is_empty() {
            corpus
        } else {
            filter_by_names(corpus, &self.machines).map_err(|e| e.to_string())?
        };
        Ok((label, corpus))
    }
}

/// Pulls the value of a `--flag VALUE` pair out of the argument stream.
fn take_value<'a>(
    flag: &str,
    iter: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, String> {
    iter.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_number<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid value '{text}'"))
}

fn parse_corpus_flag(
    flag: &str,
    iter: &mut std::slice::Iter<'_, String>,
    corpus: &mut CorpusArgs,
) -> Result<bool, String> {
    match flag {
        "--suite" => corpus.suite = take_value(flag, iter)?.clone(),
        "--kiss2" => corpus.kiss2 = Some(PathBuf::from(take_value(flag, iter)?)),
        "--machine" => corpus.machines.push(take_value(flag, iter)?.clone()),
        _ => return Ok(false),
    }
    Ok(true)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs {
        suite: "embedded".into(),
        kiss2: None,
        machines: Vec::new(),
    };
    let mut config = PipelineConfig::default();
    let mut jobs = default_jobs();
    let mut out: Option<PathBuf> = None;
    let mut stats_out: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)? {
            continue;
        }
        match flag.as_str() {
            "--jobs" => jobs = parse_number(flag, take_value(flag, &mut iter)?)?,
            "--solver-jobs" => {
                config.solver.parallel_subtrees = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--no-bnb" => config.solver.branch_and_bound = false,
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--stats-out" => stats_out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--max-nodes" => {
                config.solver.max_nodes = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--patterns" => {
                config.patterns_per_session = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--gate-states" => {
                config.gate_level.max_states = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--gate-inputs" => {
                config.gate_level.max_inputs = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--no-minimize" => config.synth.minimize = false,
            "--timeout-secs" => {
                let secs: u64 = parse_number(flag, take_value(flag, &mut iter)?)?;
                config.machine_timeout = Some(Duration::from_secs(secs));
            }
            other => return Err(format!("unknown flag '{other}' for 'stc run'")),
        }
    }
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    eprintln!(
        "stc run: {} machines from '{label}', {jobs} worker(s)",
        corpus.len()
    );
    let SuiteRun { report, timings } = run_corpus(&corpus, &config, jobs, &label);

    eprint!("{}", format_summary_table(&report));
    let total: Duration = timings.iter().map(|t| t.elapsed).sum();
    let slowest = timings.iter().max_by_key(|t| t.elapsed);
    if let Some(slowest) = slowest {
        eprintln!(
            "cpu time {:.1}s total, slowest machine '{}' at {:.1}s",
            total.as_secs_f64(),
            slowest.name,
            slowest.elapsed.as_secs_f64()
        );
    }

    if let Some(path) = stats_out {
        let stats = search_stats_json(&report).to_pretty();
        std::fs::write(&path, stats)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let json = report.to_json_string();
    match out {
        Some(path) => std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs {
        suite: "embedded".into(),
        kiss2: None,
        machines: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if !parse_corpus_flag(flag, &mut iter, &mut corpus_args)? {
            return Err(format!("unknown flag '{flag}' for 'stc list'"));
        }
    }
    let (label, corpus) = corpus_args.load()?;
    println!("corpus '{label}': {} machines", corpus.len());
    for entry in &corpus {
        println!(
            "  {:<12} |S|={:<4} inputs={:<4} outputs={:<3}{}",
            entry.name(),
            entry.machine.num_states(),
            entry.machine.num_inputs(),
            entry.machine.num_outputs(),
            if entry.table1.is_some() {
                "  [paper Table 1]"
            } else {
                ""
            }
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_check(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline_dir = PathBuf::from("crates/bench");
    let mut measured_dir: Option<PathBuf> = None;
    let mut tolerance = 0.30_f64;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--baseline-dir" => baseline_dir = PathBuf::from(take_value(flag, &mut iter)?),
            "--measured-dir" => measured_dir = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--threshold" | "--tolerance" => {
                tolerance = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            other => return Err(format!("unknown flag '{other}' for 'stc bench-check'")),
        }
    }
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err("--threshold must be a non-negative number".into());
    }

    let measured_dir = match measured_dir {
        Some(dir) => dir,
        None => run_bench_harness()?,
    };
    let baseline = flatten(load_baseline_dir(&baseline_dir).map_err(|e| e.to_string())?);
    let measured = flatten(load_baseline_dir(&measured_dir).map_err(|e| e.to_string())?);

    let check = compare_benchmarks(&baseline, &measured, tolerance);
    eprint!("{}", check.format_table());
    let improvements = check.improvements();
    if !improvements.is_empty() {
        eprintln!(
            "{} benchmark(s) improved beyond the tolerance; consider re-baselining \
             (see README: 'Re-baselining').",
            improvements.len()
        );
    }
    if check.passed() {
        eprintln!(
            "bench-check passed: {} benchmark(s) within ±{:.0}%",
            check.compared.len(),
            100.0 * tolerance
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "bench-check FAILED: {} regression(s), {} missing benchmark(s)",
            check.regressions().len(),
            check.missing.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn flatten(files: Vec<(String, Vec<BenchMeasurement>)>) -> Vec<BenchMeasurement> {
    files.into_iter().flat_map(|(_, m)| m).collect()
}

/// Runs `cargo bench -p stc-bench` with `STC_BENCH_DIR` pointing at a
/// scratch directory, so the vendored criterion harness deposits the fresh
/// `BENCH_*.json` files there instead of clobbering the committed baselines
/// (bench binaries run with the package directory as their cwd).  Returns
/// the scratch directory.
fn run_bench_harness() -> Result<PathBuf, String> {
    let scratch = PathBuf::from("target").join("bench-check");
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("cannot create {}: {e}", scratch.display()))?;
    // Clear stale measurements so a failed bench run cannot silently pass
    // against last week's files.
    for entry in std::fs::read_dir(&scratch)
        .map_err(|e| format!("cannot read {}: {e}", scratch.display()))?
        .filter_map(Result::ok)
    {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    let scratch_abs = std::fs::canonicalize(&scratch)
        .map_err(|e| format!("cannot canonicalize {}: {e}", scratch.display()))?;
    eprintln!(
        "running `cargo bench -p stc-bench` (measurements: {})",
        scratch_abs.display()
    );
    let status = std::process::Command::new("cargo")
        .args(["bench", "-p", "stc-bench"])
        .env("STC_BENCH_DIR", &scratch_abs)
        .status()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed with {status}"));
    }
    Ok(scratch)
}
