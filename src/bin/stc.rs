//! The `stc` command-line interface: batch synthesis of self-testable
//! controllers over a corpus, a long-lived JSON-lines service, and the
//! perf-regression gate used in CI.
//!
//! * `stc run` — drive the full flow (OSTR solve → encode → logic → BIST,
//!   plus the exact fault-coverage stage with `--coverage`) over the
//!   embedded benchmark suite or a directory of KISS2 files, in parallel,
//!   and emit a deterministic JSON report.
//! * `stc coverage` — the same flow with the coverage stage forced on,
//!   emitting the focused per-machine measured-coverage JSON.
//! * `stc optimize` — the flow with the plan-optimizer stage forced on,
//!   emitting the focused per-machine optimized-plan JSON (LFSR seed and
//!   polynomial per session, minimal session lengths, and — when the target
//!   is unreachable — SCOAP-ranked test-point suggestions).
//! * `stc lint` — the flow with the static-analysis stage forced on,
//!   emitting the focused per-machine lint/testability JSON (FSM lints,
//!   netlist structure checks, SCOAP hard-to-test nets); non-zero exit when
//!   any finding reaches error severity (`--deny` promotes codes).
//! * `stc emit` — the flow with the code-emission stage forced on, printing
//!   the per-machine module digests as JSON and (with `--out DIR`) writing
//!   the generated sources: allocation-free `no_std` Rust controllers with a
//!   built-in two-session self-test, or structural Verilog with a BIST
//!   wrapper (`--target rust|verilog`; see docs/EMIT.md).
//! * `stc serve` — serve one-machine synthesis requests over
//!   stdin/stdout (one JSON request per line, one JSON response per line).
//! * `stc bench-check` — run the bench harness and compare against the
//!   committed `crates/bench/BENCH_*.json` baselines with a relative
//!   tolerance; non-zero exit on regression.
//! * `stc scale-table` — render the scale suite's speedup-vs-threads tables
//!   from a `BENCH_scale.json` baseline (the README embeds the committed
//!   table; nightly CI renders the runner's).
//! * `stc list` — list the machines of a corpus.
//!
//! All commands layer configuration the same way: crate defaults, then an
//! optional `--profile` file, then individual flags — the `stc::Synthesis`
//! session's `StcConfig` layers.  See the README for the JSON report schema
//! and the re-baselining workflow.

#![forbid(unsafe_code)]

use stc::analyze::Severity;
use stc::pipeline::{
    compare_benchmarks, coverage_json, embedded_corpus, emit_json, filter_by_names,
    format_speedup_table, format_summary_table, kiss2_corpus, lint_json, load_baseline_dir,
    optimize_json, parse_baseline,
    search_stats_json, serve_with, BenchMeasurement, CacheLimits, CorpusEntry, Event, NetOptions,
    NetServer, Observer, PipelineError, ServeOptions, StcConfig, SuiteRun, Synthesis,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
stc — synthesis of self-testable controllers (Hellebrand & Wunderlich, EURO-DAC '94)

USAGE:
    stc run [OPTIONS]            run the batch pipeline and print a JSON report
    stc coverage [OPTIONS]       run the pipeline with the exact fault-coverage
                                 stage and print the per-machine coverage JSON
    stc optimize [OPTIONS]       run the pipeline with the BIST plan optimizer
                                 and print the per-machine optimized-plan JSON
                                 (shortest LFSR source reaching the coverage
                                 target; see docs/COVERAGE.md)
    stc lint [OPTIONS]           run the pipeline with the static-analysis stage
                                 and print the per-machine lint/testability JSON;
                                 exit 1 if any finding reaches error severity
    stc emit [OPTIONS]           run the pipeline with the code-emission stage
                                 and print the per-machine module-digest JSON;
                                 --out DIR also writes the generated sources
                                 (no_std Rust with a built-in self-test, or
                                 Verilog with a BIST wrapper; see docs/EMIT.md)
    stc serve [OPTIONS]          serve synthesis requests over stdin/stdout, or
                                 over TCP with --listen (JSON lines; see
                                 docs/SERVE.md for the full protocol)
    stc list [OPTIONS]           list the machines of the selected corpus
    stc bench-check [OPTIONS]    compare bench results against committed baselines
    stc scale-table [FILE]       print the speedup-vs-threads tables of the scale
                                 suite from a BENCH_scale.json baseline
                                 (default: crates/bench/BENCH_scale.json)
    stc help                     print this message

CORPUS OPTIONS (run, coverage, optimize, lint, emit, list):
    --suite embedded             the embedded 13-machine benchmark suite (default)
    --kiss2 <DIR>                load every *.kiss2 / *.kiss file of a directory
    --machine <NAME>             restrict to the named machine (repeatable)

CONFIG OPTIONS (run, serve; layered over --profile, which layers over defaults):
    --profile <FILE>             a TOML-style profile ([section] + key = value
                                 lines; full key list at the bottom)
    --jobs <N>                   worker threads (0 = auto-detect, the default;
                                 1 selects the serial fallback — same output)
    --solver-jobs <N>            threads for the OSTR solver's parallel subtree
                                 exploration per machine (default 1; any value
                                 produces byte-identical results)
    --no-bnb                     disable the solver's branch-and-bound pruning
                                 (changes search statistics, not the reported
                                 solution; tie corner: DESIGN.md §5)
    --max-nodes <N>              OSTR solver node budget per machine (default 100000)
    --patterns <N>               BIST patterns per self-test session (default 256)
    --gate-states <N>            max |S| for the gate-level stages (default 10)
    --gate-inputs <N>            max input-alphabet size for gate level (default 16)
    --no-minimize                skip two-level minimisation
    --timeout-secs <S>           per-machine wall-clock safety net, checked between
                                 stages (0 = off, the default; using it can make
                                 reports depend on machine speed)
    --stage-deadline-secs <S>    per-stage wall-clock deadline (default: off; the
                                 solve stage honours it by cooperative cancellation)
    --set <KEY=VALUE>            any dotted config key (e.g. encoding=gray),
                                 repeatable — the full key list is at the bottom

RUN OPTIONS:
    --coverage                   measure exact single-stuck-at coverage of each
                                 machine's BIST plan (bit-parallel fault
                                 simulation of the plan's own stimuli); adds
                                 bist.measured_coverage / bist.undetected_faults
                                 to the report
    --optimize                   search LFSR seed / polynomial candidates for a
                                 shorter two-session plan reaching the coverage
                                 target; adds an optimize section to each
                                 machine report
    --lint                       run the static-analysis stage (FSM lints,
                                 netlist structure checks, SCOAP metrics); adds
                                 an analysis section to each machine report
    --emit                       run the code-emission stage; adds an emit
                                 digest section (module, file, bytes, FNV-1a)
                                 to each machine report
    --progress                   live per-stage / solver-progress events on stderr
    --out <FILE>                 write the JSON report to FILE instead of stdout
    --stats-out <FILE>           also write the per-machine search-effort stats
                                 (the CI search-stats gate artefact) to FILE

COVERAGE OPTIONS (corpus + config options also apply):
    --out <FILE>                 write the coverage JSON to FILE instead of stdout
    --max-patterns <N>           cap patterns per session in the measurement
                                 (0 = the plan's full budget, the default)

OPTIMIZE OPTIONS (corpus + config options also apply):
    --out <FILE>                 write the optimize JSON to FILE instead of stdout
    --target <F>                 coverage target as a fraction in (0, 1]
                                 (default 1.0)
    --max-candidates <N>         pattern sources tried per block (default 16)
    --max-total-length <N>       budget for the summed session lengths
                                 (0 = 2 x bist.patterns, the default)

LINT OPTIONS (corpus + config options also apply):
    --out <FILE>                 write the lint JSON to FILE instead of stdout
    --deny <CODE[,CODE…]>        promote diagnostic codes to error severity
                                 (repeatable; same as --set analysis.deny=…)

EMIT OPTIONS (corpus + config options also apply):
    --target <T>                 codegen backend: rust (default) or verilog
                                 (same as --set emit.target=…)
    --module-name <NAME>         module-name override, sanitised to an
                                 identifier (default: the machine name)
    --out <DIR>                  also write the generated source files into DIR
                                 (one .rs or .v file per gate-level machine);
                                 the digest JSON still goes to stdout

SERVE OPTIONS (config options also apply):
    --listen <ADDR>              serve over TCP at ADDR (e.g. 127.0.0.1:7878;
                                 port 0 picks an ephemeral port, logged on
                                 stderr) instead of stdin/stdout; one
                                 JSON-lines conversation per connection
    --cache-size <N>             artifact-cache entry bound (default 256;
                                 0 disables the cache)
    --cache-bytes <N>            artifact-cache payload bound in bytes
                                 (default 67108864 = 64 MiB; 0 disables)
    --max-connections <N>        simultaneous TCP connections; extra clients
                                 get one error line and are disconnected
                                 (default 64; --listen only)
    --stats-interval-secs <S>    print a service-stats summary line to stderr
                                 every S seconds (default 0 = off; --listen only)

BENCH-CHECK OPTIONS:
    --baseline-dir <DIR>         committed baselines (default: crates/bench)
    --measured-dir <DIR>         pre-existing fresh BENCH_*.json files; when absent,
                                 `cargo bench -p stc-bench` runs in target/bench-check
    --threshold <F>              relative regression threshold, 0.30 = ±30%
                                 (default 0.30; --tolerance is an alias)

The JSON report contains no wall-clock values: for a fixed corpus and options
it is byte-identical for any --jobs / --solver-jobs value, so CI diffs it
against a golden file.  Timings and --progress events go to stderr.
";

/// The full help text: the static usage plus the dotted config-key table
/// generated from [`stc::pipeline::CONFIG_KEYS`], so the list printed here
/// can never drift from what `--set`, profile files and serve-request
/// overrides actually accept.
fn usage() -> String {
    let mut out = String::from(USAGE);
    out.push_str("\nCONFIG KEYS (--set, --profile files, serve-request overrides):\n");
    for (key, help) in stc::pipeline::CONFIG_KEYS {
        out.push_str(&format!("    {key:<28} {help}\n"));
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "coverage" => cmd_coverage(rest),
        "optimize" => cmd_optimize(rest),
        "lint" => cmd_lint(rest),
        "emit" => cmd_emit(rest),
        "serve" => cmd_serve(rest),
        "list" => cmd_list(rest),
        "bench-check" => cmd_bench_check(rest),
        "scale-table" => cmd_scale_table(rest),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Shared corpus selection flags of `run` and `list`.
struct CorpusArgs {
    suite: String,
    kiss2: Option<PathBuf>,
    machines: Vec<String>,
}

impl CorpusArgs {
    fn new() -> Self {
        Self {
            suite: "embedded".into(),
            kiss2: None,
            machines: Vec::new(),
        }
    }

    fn load(&self) -> Result<(String, Vec<CorpusEntry>), String> {
        let (label, corpus) = match &self.kiss2 {
            Some(dir) => (
                dir.display().to_string(),
                kiss2_corpus(dir).map_err(|e| e.to_string())?,
            ),
            None => {
                if self.suite != "embedded" {
                    return Err(format!(
                        "unknown suite '{}' (only 'embedded' is built in; use --kiss2 for \
                         external corpora)",
                        self.suite
                    ));
                }
                ("embedded".to_string(), embedded_corpus())
            }
        };
        let corpus = if self.machines.is_empty() {
            corpus
        } else {
            filter_by_names(corpus, &self.machines).map_err(|e| e.to_string())?
        };
        Ok((label, corpus))
    }
}

/// Pulls the value of a `--flag VALUE` pair out of the argument stream.
fn take_value<'a>(
    flag: &str,
    iter: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, String> {
    iter.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_number<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid value '{text}'"))
}

fn parse_corpus_flag(
    flag: &str,
    iter: &mut std::slice::Iter<'_, String>,
    corpus: &mut CorpusArgs,
) -> Result<bool, String> {
    match flag {
        "--suite" => corpus.suite = take_value(flag, iter)?.clone(),
        "--kiss2" => corpus.kiss2 = Some(PathBuf::from(take_value(flag, iter)?)),
        "--machine" => corpus.machines.push(take_value(flag, iter)?.clone()),
        _ => return Ok(false),
    }
    Ok(true)
}

/// Flags shared by `run` and `serve` that layer onto the session
/// configuration.  Collected as `(key, value)` overrides so the layering
/// order (defaults < profile < flags) holds no matter where `--profile`
/// appears on the command line.
struct ConfigArgs {
    profile: Option<PathBuf>,
    overrides: Vec<(String, String)>,
}

impl ConfigArgs {
    fn new() -> Self {
        Self {
            profile: None,
            overrides: Vec::new(),
        }
    }

    /// Tries to consume one config flag; `Ok(false)` means the flag is not a
    /// config flag.
    fn parse_flag(
        &mut self,
        flag: &str,
        iter: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        let mut push = |key: &str, value: String| {
            self.overrides.push((key.to_string(), value));
        };
        match flag {
            "--profile" => self.profile = Some(PathBuf::from(take_value(flag, iter)?)),
            "--jobs" => push("jobs", take_value(flag, iter)?.clone()),
            "--solver-jobs" => push("solver.jobs", take_value(flag, iter)?.clone()),
            "--no-bnb" => push("solver.branch_and_bound", "false".into()),
            "--max-nodes" => push("solver.max_nodes", take_value(flag, iter)?.clone()),
            "--patterns" => push("bist.patterns", take_value(flag, iter)?.clone()),
            "--gate-states" => push("gate_level.max_states", take_value(flag, iter)?.clone()),
            "--gate-inputs" => push("gate_level.max_inputs", take_value(flag, iter)?.clone()),
            "--no-minimize" => push("synth.minimize", "false".into()),
            "--timeout-secs" => push("machine_timeout_secs", take_value(flag, iter)?.clone()),
            "--stage-deadline-secs" => {
                push("stage_deadline_secs", take_value(flag, iter)?.clone());
            }
            "--set" => {
                let pair = take_value(flag, iter)?;
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects KEY=VALUE, got '{pair}'"))?;
                push(key.trim(), value.trim().to_string());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds the effective configuration: defaults < profile < flags.
    fn build(&self) -> Result<StcConfig, String> {
        let mut config = StcConfig::default();
        if let Some(path) = &self.profile {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read profile {}: {e}", path.display()))?;
            config
                .apply_profile(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        for (key, value) in &self.overrides {
            config.set(key, value).map_err(|e| e.to_string())?;
        }
        Ok(config)
    }
}

/// The `--progress` observer: one line per event on stderr, timestamped
/// relative to the start of the run.  Purely a side channel — the JSON
/// report is unaffected.
struct ProgressObserver {
    start: Instant,
}

impl ProgressObserver {
    fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    fn line(&self, machine: &str, what: &str) {
        eprintln!(
            "[{:9.3}s] {:<10} {what}",
            self.start.elapsed().as_secs_f64(),
            machine
        );
    }
}

impl Observer for ProgressObserver {
    fn on_event(&self, event: &Event<'_>) {
        match event {
            Event::StageStarted { machine, stage } => self.line(machine, &format!("{stage} …")),
            Event::StageFinished { machine, stage } => self.line(machine, &format!("{stage} ok")),
            Event::SolverProgress { machine, nodes } => {
                self.line(machine, &format!("solve {nodes} nodes"));
            }
            Event::IncumbentImproved {
                machine,
                register_bits,
            } => self.line(machine, &format!("incumbent {register_bits} register bits")),
            Event::BudgetExhausted { machine } => self.line(machine, "solve budget exhausted"),
            Event::OptimizeCandidate {
                machine,
                block,
                candidate,
                length,
                coverage,
            } => {
                let reach = match length {
                    Some(length) => format!("length {length}"),
                    None => format!("coverage {coverage:.3}"),
                };
                self.line(machine, &format!("optimize {block} #{candidate}: {reach}"));
            }
            Event::OptimizeIncumbent {
                machine,
                block,
                candidate,
                length,
            } => self.line(
                machine,
                &format!("optimize {block} incumbent #{candidate}: length {length}"),
            ),
            Event::MachineFinished { machine, status } => {
                self.line(machine, &format!("finished: {status}"));
            }
        }
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut config_args = ConfigArgs::new();
    let mut out: Option<PathBuf> = None;
    let mut stats_out: Option<PathBuf> = None;
    let mut progress = false;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)?
            || config_args.parse_flag(flag, &mut iter)?
        {
            continue;
        }
        match flag.as_str() {
            "--coverage" => config_args
                .overrides
                .push(("coverage.enabled".into(), "true".into())),
            "--optimize" => config_args
                .overrides
                .push(("coverage.optimize.enabled".into(), "true".into())),
            "--lint" => config_args
                .overrides
                .push(("analysis.enabled".into(), "true".into())),
            "--emit" => config_args
                .overrides
                .push(("emit.enabled".into(), "true".into())),
            "--progress" => progress = true,
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--stats-out" => stats_out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            other => return Err(format!("unknown flag '{other}' for 'stc run'")),
        }
    }
    let config = config_args.build()?;
    let jobs = config.resolve_jobs();

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    // The resolved worker count is logged, never echoed into the report.
    eprintln!(
        "stc run: {} machines from '{label}', {jobs} worker(s){}",
        corpus.len(),
        if config.jobs == 0 { " [auto]" } else { "" }
    );

    let mut builder = Synthesis::builder().config(config);
    if progress {
        builder = builder.observer(Arc::new(ProgressObserver::new()));
    }
    let session = builder.build();
    let SuiteRun { report, timings } = session.run_suite(&corpus, &label);

    eprint!("{}", format_summary_table(&report));
    let total: std::time::Duration = timings.iter().map(|t| t.elapsed).sum();
    let slowest = timings.iter().max_by_key(|t| t.elapsed);
    if let Some(slowest) = slowest {
        eprintln!(
            "cpu time {:.1}s total, slowest machine '{}' at {:.1}s",
            total.as_secs_f64(),
            slowest.name,
            slowest.elapsed.as_secs_f64()
        );
    }

    if let Some(path) = stats_out {
        let stats = search_stats_json(&report).to_pretty();
        std::fs::write(&path, stats)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let json = report.to_json_string();
    match out {
        Some(path) => std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `stc coverage`: the pipeline with the exact fault-coverage stage forced
/// on, emitting the focused per-machine coverage JSON (the full report —
/// which the CI `coverage-gate` diffs — comes from `stc run --coverage`).
fn cmd_coverage(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut config_args = ConfigArgs::new();
    let mut out: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)?
            || config_args.parse_flag(flag, &mut iter)?
        {
            continue;
        }
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--max-patterns" => config_args.overrides.push((
                "coverage.max_patterns".into(),
                take_value(flag, &mut iter)?.clone(),
            )),
            other => return Err(format!("unknown flag '{other}' for 'stc coverage'")),
        }
    }
    let mut config = config_args.build()?;
    config
        .set("coverage.enabled", "true")
        .map_err(|e| e.to_string())?;
    let jobs = config.resolve_jobs();

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    eprintln!(
        "stc coverage: {} machines from '{label}', {jobs} worker(s){}",
        corpus.len(),
        if config.jobs == 0 { " [auto]" } else { "" }
    );

    let session = Synthesis::builder().config(config).build();
    let SuiteRun { report, .. } = session.run_suite(&corpus, &label);
    eprint!("{}", format_summary_table(&report));

    let json = coverage_json(&report).to_pretty();
    match out {
        Some(path) => std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `stc optimize`: the pipeline with the BIST plan optimizer forced on,
/// emitting the focused per-machine optimized-plan JSON (the full report —
/// which the CI `optimize-gate` diffs — comes from `stc run --optimize`).
fn cmd_optimize(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut config_args = ConfigArgs::new();
    let mut out: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)?
            || config_args.parse_flag(flag, &mut iter)?
        {
            continue;
        }
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--target" => config_args.overrides.push((
                "coverage.optimize.target".into(),
                take_value(flag, &mut iter)?.clone(),
            )),
            "--max-candidates" => config_args.overrides.push((
                "coverage.optimize.max_candidates".into(),
                take_value(flag, &mut iter)?.clone(),
            )),
            "--max-total-length" => config_args.overrides.push((
                "coverage.optimize.max_total_length".into(),
                take_value(flag, &mut iter)?.clone(),
            )),
            other => return Err(format!("unknown flag '{other}' for 'stc optimize'")),
        }
    }
    let mut config = config_args.build()?;
    config
        .set("coverage.optimize.enabled", "true")
        .map_err(|e| e.to_string())?;
    let jobs = config.resolve_jobs();

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    eprintln!(
        "stc optimize: {} machines from '{label}', {jobs} worker(s){}",
        corpus.len(),
        if config.jobs == 0 { " [auto]" } else { "" }
    );

    let session = Synthesis::builder().config(config).build();
    let SuiteRun { report, .. } = session.run_suite(&corpus, &label);
    eprint!("{}", format_summary_table(&report));

    let json = optimize_json(&report).to_pretty();
    match out {
        Some(path) => std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `stc lint`: the pipeline with the static-analysis stage forced on,
/// emitting the focused per-machine lint/testability JSON (the full report —
/// with the same analysis sections inline — comes from `stc run --lint`).
/// Exits non-zero when any finding reaches error severity, so CI can gate on
/// it directly; `--deny` promotes codes for stricter gates.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut config_args = ConfigArgs::new();
    let mut out: Option<PathBuf> = None;
    let mut deny: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)?
            || config_args.parse_flag(flag, &mut iter)?
        {
            continue;
        }
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--deny" => deny.push(take_value(flag, &mut iter)?.clone()),
            other => return Err(format!("unknown flag '{other}' for 'stc lint'")),
        }
    }
    let mut config = config_args.build()?;
    config
        .set("analysis.enabled", "true")
        .map_err(|e| e.to_string())?;
    if !deny.is_empty() {
        config
            .set("analysis.deny", &deny.join(","))
            .map_err(|e| e.to_string())?;
    }
    let jobs = config.resolve_jobs();

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    eprintln!(
        "stc lint: {} machines from '{label}', {jobs} worker(s){}",
        corpus.len(),
        if config.jobs == 0 { " [auto]" } else { "" }
    );

    let session = Synthesis::builder().config(config).build();
    let SuiteRun { report, .. } = session.run_suite(&corpus, &label);

    let errors: usize = report
        .machines
        .iter()
        .filter_map(|m| m.analysis.as_ref())
        .map(|a| a.count_at_least(Severity::Error))
        .sum();
    let warnings: usize = report
        .machines
        .iter()
        .filter_map(|m| m.analysis.as_ref())
        .map(|a| a.count_at_least(Severity::Warning))
        .sum::<usize>()
        - errors;
    eprintln!("stc lint: {errors} error(s), {warnings} warning(s)");

    let json = lint_json(&report).to_pretty();
    match out {
        Some(path) => std::fs::write(&path, &json)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{json}"),
    }
    Ok(if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `stc emit`: the pipeline with the code-emission stage forced on, emitting
/// the focused per-machine module-digest JSON (which the CI `emit-gate`
/// diffs against `tests/golden/emit.json`) and — with `--out DIR` — the
/// generated source files themselves.
fn cmd_emit(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut config_args = ConfigArgs::new();
    let mut out_dir: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if parse_corpus_flag(flag, &mut iter, &mut corpus_args)?
            || config_args.parse_flag(flag, &mut iter)?
        {
            continue;
        }
        match flag.as_str() {
            "--out" => out_dir = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--target" => config_args
                .overrides
                .push(("emit.target".into(), take_value(flag, &mut iter)?.clone())),
            "--module-name" => config_args.overrides.push((
                "emit.module_name".into(),
                take_value(flag, &mut iter)?.clone(),
            )),
            other => return Err(format!("unknown flag '{other}' for 'stc emit'")),
        }
    }
    let mut config = config_args.build()?;
    config
        .set("emit.enabled", "true")
        .map_err(|e| e.to_string())?;
    let jobs = config.resolve_jobs();

    let (label, corpus) = corpus_args.load()?;
    if corpus.is_empty() {
        return Err(PipelineError::EmptyCorpus(label).to_string());
    }
    eprintln!(
        "stc emit: {} machines from '{label}', {jobs} worker(s){}",
        corpus.len(),
        if config.jobs == 0 { " [auto]" } else { "" }
    );

    let session = Synthesis::builder().config(config).build();
    let SuiteRun { report, .. } = session.run_suite(&corpus, &label);
    eprint!("{}", format_summary_table(&report));

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut written = 0usize;
        for entry in &corpus {
            match session.emit_machine(entry) {
                Ok(code) => {
                    for module in &code.modules {
                        let path = dir.join(&module.file_name);
                        std::fs::write(&path, &module.source)
                            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                        written += 1;
                    }
                }
                // Machines beyond the gate-level limits have no netlist to
                // compile; their report rows already say solve-only.
                Err(e) => eprintln!("stc emit: {}: skipped ({e})", entry.name()),
            }
        }
        eprintln!("stc emit: wrote {written} module(s) to {}", dir.display());
    }

    let json = emit_json(&report).to_pretty();
    print!("{json}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let default_limits = CacheLimits::default();
    let mut config_args = ConfigArgs::new();
    let mut listen: Option<String> = None;
    let mut cache_size = default_limits.max_entries;
    let mut cache_bytes = default_limits.max_bytes;
    let mut max_connections = NetOptions::default().max_connections;
    let mut stats_interval_secs = 0u64;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if config_args.parse_flag(flag, &mut iter)? {
            continue;
        }
        match flag.as_str() {
            "--listen" => listen = Some(take_value(flag, &mut iter)?.clone()),
            "--cache-size" => cache_size = parse_number(flag, take_value(flag, &mut iter)?)?,
            "--cache-bytes" => cache_bytes = parse_number(flag, take_value(flag, &mut iter)?)?,
            "--max-connections" => {
                max_connections = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            "--stats-interval-secs" => {
                stats_interval_secs = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            other => return Err(format!("unknown flag '{other}' for 'stc serve'")),
        }
    }
    let config = config_args.build()?;
    let cache = (cache_size > 0 && cache_bytes > 0).then_some(CacheLimits {
        max_entries: cache_size,
        max_bytes: cache_bytes,
    });
    let cache_label = match cache {
        Some(limits) => format!(
            "cache {} entries / {} bytes",
            limits.max_entries, limits.max_bytes
        ),
        None => "cache off".to_string(),
    };

    let stats = if let Some(addr) = listen {
        let options = NetOptions {
            max_connections,
            cache,
            stats_interval: (stats_interval_secs > 0)
                .then(|| std::time::Duration::from_secs(stats_interval_secs)),
        };
        let server = NetServer::bind(addr.as_str(), &config, options)
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let local = server
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        // Tests and scripts parse this line to discover an ephemeral port.
        eprintln!(
            "stc serve: listening on {local}, up to {max_connections} connection(s), \
             {cache_label} — send {{\"shutdown\":true}} or Ctrl-C to stop"
        );
        server.run().map_err(|e| format!("serve I/O error: {e}"))?
    } else {
        let jobs = config.resolve_jobs();
        eprintln!(
            "stc serve: ready on stdin/stdout, {jobs} worker(s){}, {cache_label} — one JSON \
             request per line",
            if config.jobs == 0 { " [auto]" } else { "" }
        );
        let stdin = std::io::stdin();
        // `Stdout` (unlike `StdoutLock`) is `Send`; the serve loop serialises
        // writes behind its own mutex anyway.
        let options = ServeOptions {
            jobs: config.jobs,
            cache,
        };
        serve_with(stdin.lock(), std::io::stdout(), &config, &options)
            .map_err(|e| format!("serve I/O error: {e}"))?
    };
    eprintln!(
        "stc serve: done, {} request(s), {} error response(s)",
        stats.requests, stats.errors
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    let mut corpus_args = CorpusArgs::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if !parse_corpus_flag(flag, &mut iter, &mut corpus_args)? {
            return Err(format!("unknown flag '{flag}' for 'stc list'"));
        }
    }
    let (label, corpus) = corpus_args.load()?;
    println!("corpus '{label}': {} machines", corpus.len());
    for entry in &corpus {
        println!(
            "  {:<12} |S|={:<4} inputs={:<4} outputs={:<3}{}",
            entry.name(),
            entry.machine.num_states(),
            entry.machine.num_inputs(),
            entry.machine.num_outputs(),
            if entry.table1.is_some() {
                "  [paper Table 1]"
            } else {
                ""
            }
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_check(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline_dir = PathBuf::from("crates/bench");
    let mut measured_dir: Option<PathBuf> = None;
    let mut tolerance = 0.30_f64;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--baseline-dir" => baseline_dir = PathBuf::from(take_value(flag, &mut iter)?),
            "--measured-dir" => measured_dir = Some(PathBuf::from(take_value(flag, &mut iter)?)),
            "--threshold" | "--tolerance" => {
                tolerance = parse_number(flag, take_value(flag, &mut iter)?)?;
            }
            other => return Err(format!("unknown flag '{other}' for 'stc bench-check'")),
        }
    }
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err("--threshold must be a non-negative number".into());
    }

    let measured_dir = match measured_dir {
        Some(dir) => dir,
        None => run_bench_harness()?,
    };
    let baseline = flatten(load_baseline_dir(&baseline_dir).map_err(|e| e.to_string())?);
    let measured = flatten(load_baseline_dir(&measured_dir).map_err(|e| e.to_string())?);

    let check = compare_benchmarks(&baseline, &measured, tolerance);
    eprint!("{}", check.format_table());
    let improvements = check.improvements();
    if !improvements.is_empty() {
        eprintln!(
            "{} benchmark(s) improved beyond the tolerance; consider re-baselining \
             (see README: 'Re-baselining').",
            improvements.len()
        );
    }
    if check.passed() {
        eprintln!(
            "bench-check passed: {} benchmark(s) within ±{:.0}%, {} speedup ratio(s) held",
            check.compared.len(),
            100.0 * tolerance,
            check.speedups.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "bench-check FAILED: {} regression(s), {} speedup regression(s), \
             {} missing benchmark(s)",
            check.regressions().len(),
            check.speedup_regressions().len(),
            check.missing.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn flatten(files: Vec<(String, Vec<BenchMeasurement>)>) -> Vec<BenchMeasurement> {
    files.into_iter().flat_map(|(_, m)| m).collect()
}

fn cmd_scale_table(args: &[String]) -> Result<ExitCode, String> {
    let mut path = PathBuf::from("crates/bench/BENCH_scale.json");
    for arg in args {
        if arg.starts_with('-') {
            return Err(format!("unknown flag '{arg}' for 'stc scale-table'"));
        }
        path = PathBuf::from(arg);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let measurements = parse_baseline(&text, &path).map_err(|e| e.to_string())?;
    let table = format_speedup_table(&measurements);
    if !table.contains("| scale_") {
        return Err(format!(
            "{} holds no scale-suite measurements (expected ostr_solver_scale/... entries)",
            path.display()
        ));
    }
    print!("{table}");
    Ok(ExitCode::SUCCESS)
}

/// Runs `cargo bench -p stc-bench` with `STC_BENCH_DIR` pointing at a
/// scratch directory, so the vendored criterion harness deposits the fresh
/// `BENCH_*.json` files there instead of clobbering the committed baselines
/// (bench binaries run with the package directory as their cwd).  Returns
/// the scratch directory.
fn run_bench_harness() -> Result<PathBuf, String> {
    let scratch = PathBuf::from("target").join("bench-check");
    std::fs::create_dir_all(&scratch)
        .map_err(|e| format!("cannot create {}: {e}", scratch.display()))?;
    // Clear stale measurements so a failed bench run cannot silently pass
    // against last week's files.
    for entry in std::fs::read_dir(&scratch)
        .map_err(|e| format!("cannot read {}: {e}", scratch.display()))?
        .filter_map(Result::ok)
    {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    let scratch_abs = std::fs::canonicalize(&scratch)
        .map_err(|e| format!("cannot canonicalize {}: {e}", scratch.display()))?;
    eprintln!(
        "running `cargo bench -p stc-bench` (measurements: {})",
        scratch_abs.display()
    );
    let status = std::process::Command::new("cargo")
        .args(["bench", "-p", "stc-bench"])
        .env("STC_BENCH_DIR", &scratch_abs)
        .status()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed with {status}"));
    }
    Ok(scratch)
}
