//! # stc — Synthesis of Self-Testable Controllers
//!
//! A Rust reproduction of Hellebrand & Wunderlich, *Synthesis of Self-Testable
//! Controllers* (European Design and Test Conference, 1994).
//!
//! The paper synthesises controllers as **pipeline-like structures** with two
//! registers `R1`, `R2` and two combinational blocks `C1`, `C2` arranged
//! without direct feedback around either register.  Such a structure can be
//! self-tested in two sessions — each register alternately generates patterns
//! and compacts responses — without any extra test registers, without
//! transparency/bypass delay, and with complete coverage of the register/logic
//! interconnect.  The synthesis problem (**OSTR**) is solved at the FSM level
//! with algebraic structure theory: find a symmetric partition pair `(π, τ)`
//! with `π ∩ τ ⊆ ε` minimising the total register bits.
//!
//! This facade crate re-exports the workspace members (module alias, crate
//! name and source directory):
//!
//! | module | crate | directory | contents |
//! |--------|-------|-----------|----------|
//! | [`fsm`] | `stc-fsm` | `crates/fsm` | Mealy machines, KISS2, state equivalence, benchmark suite |
//! | [`partition`] | `stc-partition` | `crates/partition` | partition algebra, partition pairs, symmetric-pair basis, Mm-lattice |
//! | [`synth`] | `stc-synth` | `crates/core` | the OSTR solver and the Theorem 1 realization |
//! | [`encoding`] | `stc-encoding` | `crates/encoding` | state assignment and bit-level machine views |
//! | [`logic`] | `stc-logic` | `crates/logic` | two-level minimisation, netlists, area/delay estimation |
//! | [`bist`] | `stc-bist` | `crates/bist` | LFSR/MISR/BILBO, fault simulation, architecture comparison |
//! | [`emit`] | `stc-emit` | `crates/emit` | codegen backends: `no_std` Rust controllers and Verilog netlists with a BIST wrapper |
//! | [`pipeline`] | `stc-pipeline` | `crates/pipeline` | corpus-level batch pipeline, parallel runner, JSON reports, perf-baseline checks |
//!
//! The staged flow is driven through one **session API**: a [`Synthesis`]
//! built from a layered [`StcConfig`] produces typed artifacts that flow one
//! into the next — [`Decomposition`] → [`Encoded`] → `Netlist` → [`BistPlan`]
//! (→ [`CoverageReport`], the exact measured fault coverage of the plan, →
//! [`OptimizedPlan`], the shortest LFSR pattern source reaching a coverage
//! target) → [`pipeline::MachineReport`] — with progress events and
//! cooperative cancellation via [`Observer`].  The `stc` binary
//! (`src/bin/stc.rs`) exposes the same flow as `stc run` (batch),
//! `stc coverage` (measured fault coverage), `stc optimize` (the plan
//! optimizer), `stc serve` (a JSON-lines request loop) and the
//! perf-regression gate; see the README for flags, the report schema and
//! the old-API migration table.
//!
//! # Quickstart
//!
//! ```
//! use stc::prelude::*;
//!
//! // The worked example of the paper (Figs. 5-8).
//! let machine = stc::fsm::paper_example();
//!
//! // One session drives the whole staged flow via typed artifacts.
//! let session = Synthesis::builder().patterns_per_session(64).build();
//! let decomposition = session.decompose_only(&machine);
//! assert_eq!(decomposition.pipeline_flipflops(), 2);
//! assert!(decomposition.verified);
//!
//! let encoded = session.encode(&decomposition).unwrap();
//! let netlist = session.synthesize_logic(&encoded);
//! let plan = session.plan_bist(&netlist);
//! assert!(plan.result.overall_coverage() > 0.5);
//!
//! // Compare the four architectures of Figs. 1-4.
//! let reports = stc::bist::evaluate_architectures(&machine, &ArchitectureOptions::default());
//! assert!(reports[3].flipflops <= reports[1].flipflops);
//! ```
//!
//! # Configuration keys
//!
//! Every knob of the flow is one dotted key, shared verbatim by
//! [`StcConfig::set`], `--set KEY=VALUE` on the CLI, `--profile` files and
//! per-request `overrides` objects of the serve protocol
//! (`docs/SERVE.md`).  The canonical table — names and help text — is
//! [`pipeline::CONFIG_KEYS`], which `stc help` prints; the list below is
//! asserted against it, so it cannot drift:
//!
//! ```
//! let keys: Vec<&str> = stc::pipeline::CONFIG_KEYS.iter().map(|(key, _)| *key).collect();
//! assert_eq!(
//!     keys,
//!     [
//!         "jobs",                       // worker threads (0 = auto)
//!         "solver.max_nodes",           // OSTR node budget per machine
//!         "solver.time_limit_secs",     // solver wall-clock limit (0 = none)
//!         "solver.lemma1_pruning",      // Lemma 1 subtree pruning
//!         "solver.stop_at_lower_bound", // stop at the proven lower bound
//!         "solver.branch_and_bound",    // cost-bound pruning
//!         "solver.jobs",                // parallel subtree exploration
//!         "solver.steal_seed",          // work-stealing schedule seed (results identical)
//!         "encoding",                   // binary | gray | one-hot | adjacency-greedy
//!         "synth.minimize",             // two-level minimisation
//!         "bist.patterns",              // patterns per self-test session
//!         "coverage.enabled",           // exact fault-coverage measurement
//!         "coverage.max_patterns",      // measurement pattern cap (0 = plan budget)
//!         "coverage.optimize.enabled",  // BIST plan optimizer stage
//!         "coverage.optimize.target",   // optimizer coverage target in (0, 1]
//!         "coverage.optimize.max_candidates",   // pattern sources per block
//!         "coverage.optimize.max_total_length", // session-length budget (0 = 2x patterns)
//!         "analysis.enabled",           // static lints + SCOAP testability
//!         "analysis.deny",              // diagnostic codes promoted to error
//!         "emit.enabled",               // codegen stage (controller + self-test)
//!         "emit.target",                // rust | verilog
//!         "emit.module_name",           // module-name override (empty = machine name)
//!         "gate_level.max_states",      // gate-level stage |S| limit
//!         "gate_level.max_inputs",      // gate-level input-alphabet limit
//!         "machine_timeout_secs",       // per-machine wall-clock net (0 = none)
//!         "stage_deadline_secs",        // per-stage deadline (0 = none)
//!     ]
//! );
//! ```
//!
//! # Optimizing the BIST plan
//!
//! [`Synthesis::optimize_plan`] searches LFSR seed and polynomial
//! candidates for each block and truncates the winner to the shortest
//! session reaching the configured coverage target (default 100%), so the
//! two test sessions apply as few patterns as the fault population
//! requires instead of the fixed budget.  The search order is
//! deterministic, the reported coverage is re-checkable with
//! [`bist::measure_optimized_plan`], and when the target is unreachable
//! within the length budget the artifact carries SCOAP-ranked test-point
//! suggestions (`docs/COVERAGE.md`):
//!
//! ```
//! use stc::Synthesis;
//!
//! let machine = stc::fsm::paper_example();
//! let session = Synthesis::builder().patterns_per_session(64).build();
//! let decomposition = session.decompose_only(&machine);
//! let encoded = session.encode(&decomposition).unwrap();
//! let netlist = session.synthesize_logic(&encoded);
//! let plan = session.plan_bist(&netlist);
//!
//! let optimized = session.optimize_plan(&plan);
//! let target = optimized.result.target;
//! assert!(optimized.result.coverage() >= target);
//! assert!(optimized.result.total_length() <= optimized.baseline_length);
//! assert!(optimized.test_points.is_empty()); // 100% reached: no suggestions
//! ```
//!
//! # Observer events
//!
//! An [`Observer`] attached via [`SynthesisBuilder::observer`] receives
//! the full event vocabulary of [`Event`]: `StageStarted` /
//! `StageFinished` (stage names from [`pipeline::stage_names`]),
//! `SolverProgress`, `IncumbentImproved`, `BudgetExhausted`,
//! `OptimizeCandidate` / `OptimizeIncumbent` (the plan optimizer's search
//! progress) and
//! `MachineFinished` — and may request cooperative cancellation via
//! `should_cancel`.  Events are a side channel: attaching an observer
//! never changes report bytes.
//!
//! ```
//! use stc::{Event, Observer, Synthesis};
//! use std::sync::{Arc, Mutex};
//!
//! #[derive(Default)]
//! struct Trace(Mutex<Vec<&'static str>>);
//! impl Observer for Trace {
//!     fn on_event(&self, event: &Event<'_>) {
//!         if let Event::StageFinished { stage, .. } = event {
//!             self.0.lock().unwrap().push(stage);
//!         }
//!     }
//! }
//!
//! let trace = Arc::new(Trace::default());
//! let session = Synthesis::builder().observer(trace.clone()).build();
//! let corpus = stc::pipeline::filter_by_names(
//!     stc::pipeline::embedded_corpus(),
//!     &["tav".to_string()],
//! )
//! .unwrap();
//! session.run(&corpus[0]);
//! let stages = trace.0.lock().unwrap().clone();
//! assert!(stages.contains(&stc::pipeline::stage_names::SOLVE));
//! assert!(stages.contains(&stc::pipeline::stage_names::BIST));
//! ```
//!
//! # The service layer
//!
//! [`pipeline::serve_with`] is the JSON-lines request loop behind
//! `stc serve` (requests in, responses out, per-request config
//! overrides); [`pipeline::NetServer`] serves the same protocol over TCP
//! with a shared content-addressed [`pipeline::ArtifactCache`] (cache
//! hits replay byte-identical responses) and [`pipeline::ServeMetrics`]
//! behind the in-protocol `stats` request.  The full protocol reference
//! is `docs/SERVE.md`; the architecture notes are `DESIGN.md` §9.
//!
//! ```
//! use stc::pipeline::{serve_with, CacheLimits, ServeOptions};
//!
//! let input: &[u8] = b"{\"id\": 1, \"ping\": true}\n";
//! let mut output = Vec::new();
//! let stats = serve_with(
//!     input,
//!     &mut output,
//!     &stc::StcConfig::default(),
//!     &ServeOptions { jobs: 1, cache: Some(CacheLimits::default()) },
//! )
//! .unwrap();
//! assert_eq!(stats.requests, 1);
//! assert!(String::from_utf8(output).unwrap().contains("\"pong\":true"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Mealy finite state machines, KISS2 parsing and the benchmark suite
/// (re-export of [`stc_fsm`]).
pub use stc_fsm as fsm;

/// Partition algebra and the Mm-lattice (re-export of [`stc_partition`]).
pub use stc_partition as partition;

/// The OSTR solver and Theorem 1 realizations (re-export of [`stc_synth`]).
pub use stc_synth as synth;

/// State assignment (re-export of [`stc_encoding`]).
pub use stc_encoding as encoding;

/// Two-level logic synthesis and netlists (re-export of [`stc_logic`]).
pub use stc_logic as logic;

/// BIST registers, fault simulation and architecture comparison
/// (re-export of [`stc_bist`]).
pub use stc_bist as bist;

/// Static testability and structural analysis: FSM/netlist lints and SCOAP
/// metrics (re-export of [`stc_analyze`]).
pub use stc_analyze as analyze;

/// Codegen backends: `no_std` Rust controllers with a built-in two-session
/// self-test, and structural Verilog with a BIST wrapper (re-export of
/// [`stc_emit`]).
pub use stc_emit as emit;

/// The corpus-level batch-synthesis pipeline, parallel runner and reports
/// (re-export of [`stc_pipeline`]).
pub use stc_pipeline as pipeline;

// The session API at the crate root: the primary public surface.
// (`stc_pipeline::Netlist`, the logic artifact, is reachable as
// `stc::pipeline::Netlist`; the root keeps `stc::logic::Netlist` for the
// gate-level type.)
pub use stc_pipeline::{
    BistPlan, CancelFlag, ConfigError, CoverageReport, Decomposition, EmittedCode, Encoded, Event,
    NullObserver, Observer, OptimizedPlan, SessionError, StcConfig, Synthesis, SynthesisBuilder,
};

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use stc_analyze::{analyze_block, lint_kiss2, lint_machine, Diagnostic, Scoap, Severity};
    #[allow(deprecated)]
    pub use stc_bist::BistStage;
    pub use stc_bist::{
        evaluate_architectures, pipeline_self_test, Architecture, ArchitectureOptions, Bilbo,
        BilboMode, Lfsr, Misr,
    };
    #[allow(deprecated)]
    pub use stc_encoding::EncodeStage;
    pub use stc_encoding::{EncodedMachine, EncodedPipeline, Encoding, EncodingStrategy};
    pub use stc_fsm::{kiss2, state_equivalence, Mealy, MealyBuilder};
    #[allow(deprecated)]
    pub use stc_logic::LogicStage;
    pub use stc_logic::{synthesize_controller, synthesize_pipeline, Netlist, SynthOptions};
    pub use stc_partition::{is_symmetric_pair, Partition};
    pub use stc_pipeline::{
        embedded_corpus, BistPlan, CancelFlag, Decomposition, Encoded, Event, Observer,
        OptimizedPlan, PipelineConfig, StcConfig, SuiteReport, SuiteRun, Synthesis,
        SynthesisBuilder,
    };
    #[allow(deprecated)]
    pub use stc_pipeline::{run_corpus, Stage};
    #[allow(deprecated)]
    pub use stc_synth::SolveStage;
    pub use stc_synth::{solve, Cost, OstrSolver, PreparedOstr, Realization, SolverConfig};
}
