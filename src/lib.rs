//! # stc — Synthesis of Self-Testable Controllers
//!
//! A Rust reproduction of Hellebrand & Wunderlich, *Synthesis of Self-Testable
//! Controllers* (European Design and Test Conference, 1994).
//!
//! The paper synthesises controllers as **pipeline-like structures** with two
//! registers `R1`, `R2` and two combinational blocks `C1`, `C2` arranged
//! without direct feedback around either register.  Such a structure can be
//! self-tested in two sessions — each register alternately generates patterns
//! and compacts responses — without any extra test registers, without
//! transparency/bypass delay, and with complete coverage of the register/logic
//! interconnect.  The synthesis problem (**OSTR**) is solved at the FSM level
//! with algebraic structure theory: find a symmetric partition pair `(π, τ)`
//! with `π ∩ τ ⊆ ε` minimising the total register bits.
//!
//! This facade crate re-exports the workspace members (module alias, crate
//! name and source directory):
//!
//! | module | crate | directory | contents |
//! |--------|-------|-----------|----------|
//! | [`fsm`] | `stc-fsm` | `crates/fsm` | Mealy machines, KISS2, state equivalence, benchmark suite |
//! | [`partition`] | `stc-partition` | `crates/partition` | partition algebra, partition pairs, symmetric-pair basis, Mm-lattice |
//! | [`synth`] | `stc-synth` | `crates/core` | the OSTR solver and the Theorem 1 realization |
//! | [`encoding`] | `stc-encoding` | `crates/encoding` | state assignment and bit-level machine views |
//! | [`logic`] | `stc-logic` | `crates/logic` | two-level minimisation, netlists, area/delay estimation |
//! | [`bist`] | `stc-bist` | `crates/bist` | LFSR/MISR/BILBO, fault simulation, architecture comparison |
//! | [`pipeline`] | `stc-pipeline` | `crates/pipeline` | corpus-level batch pipeline, parallel runner, JSON reports, perf-baseline checks |
//!
//! The `stc` binary (`src/bin/stc.rs`) exposes the batch pipeline and the
//! perf-regression gate on the command line; see the README for its flags
//! and the JSON report schema.
//!
//! # Quickstart
//!
//! ```
//! use stc::prelude::*;
//!
//! // The worked example of the paper (Figs. 5-8).
//! let machine = stc::fsm::paper_example();
//!
//! // Solve OSTR: find the cheapest symmetric partition pair.
//! let outcome = stc::synth::solve(&machine);
//! assert_eq!(outcome.pipeline_flipflops(), 2);
//!
//! // Build the pipeline realization (Theorem 1) and verify it.
//! let realization = outcome.best.realize(&machine);
//! assert!(realization.verify(&machine).is_none());
//!
//! // Synthesise the logic and compare the four architectures of Figs. 1-4.
//! let reports = stc::bist::evaluate_architectures(&machine, &ArchitectureOptions::default());
//! assert!(reports[3].flipflops <= reports[1].flipflops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Mealy finite state machines, KISS2 parsing and the benchmark suite
/// (re-export of [`stc_fsm`]).
pub use stc_fsm as fsm;

/// Partition algebra and the Mm-lattice (re-export of [`stc_partition`]).
pub use stc_partition as partition;

/// The OSTR solver and Theorem 1 realizations (re-export of [`stc_synth`]).
pub use stc_synth as synth;

/// State assignment (re-export of [`stc_encoding`]).
pub use stc_encoding as encoding;

/// Two-level logic synthesis and netlists (re-export of [`stc_logic`]).
pub use stc_logic as logic;

/// BIST registers, fault simulation and architecture comparison
/// (re-export of [`stc_bist`]).
pub use stc_bist as bist;

/// The corpus-level batch-synthesis pipeline, parallel runner and reports
/// (re-export of [`stc_pipeline`]).
pub use stc_pipeline as pipeline;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use stc_bist::{
        evaluate_architectures, pipeline_self_test, Architecture, ArchitectureOptions, Bilbo,
        BilboMode, BistStage, Lfsr, Misr,
    };
    pub use stc_encoding::{
        EncodeStage, EncodedMachine, EncodedPipeline, Encoding, EncodingStrategy,
    };
    pub use stc_fsm::{kiss2, state_equivalence, Mealy, MealyBuilder};
    pub use stc_logic::{
        synthesize_controller, synthesize_pipeline, LogicStage, Netlist, SynthOptions,
    };
    pub use stc_partition::{is_symmetric_pair, Partition};
    pub use stc_pipeline::{
        embedded_corpus, run_corpus, PipelineConfig, Stage, SuiteReport, SuiteRun,
    };
    pub use stc_synth::{solve, Cost, OstrSolver, Realization, SolveStage, SolverConfig};
}
