//! The README's command-reference table must match `stc help` — both ways:
//! every table row's summary is the literal help text, and every command in
//! the help USAGE section has a row.  This is the anti-drift gate promised
//! in the README itself.

use std::process::Command;

/// Whitespace-normalises text so line wrapping differences don't matter.
fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The rows of the README's `| invocation | summary |` table as
/// `(invocation, summary)` pairs.
fn readme_table() -> Vec<(String, String)> {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in readme.lines() {
        if line.starts_with("| invocation |") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if line.starts_with("|--") {
            continue;
        }
        let Some(body) = line.strip_prefix("| ") else {
            break; // table ended
        };
        let (invocation, rest) = body.split_once(" | ").expect("two-column row");
        let summary = rest.trim_end_matches(" |").trim_end_matches('|').trim();
        let invocation = invocation.trim_matches('`').to_string();
        rows.push((invocation, summary.to_string()));
    }
    assert!(!rows.is_empty(), "README has the command-reference table");
    rows
}

#[test]
fn the_readme_command_table_matches_stc_help() {
    let output = Command::new(env!("CARGO_BIN_EXE_stc"))
        .arg("help")
        .output()
        .expect("stc help runs");
    assert!(output.status.success());
    let help = normalize(&String::from_utf8(output.stdout).expect("help is UTF-8"));

    let rows = readme_table();

    // Forward: every README row quotes help verbatim (modulo line wrapping).
    for (invocation, summary) in &rows {
        let token = invocation
            .split_whitespace()
            .next()
            .expect("nonempty invocation");
        assert!(
            help.contains(token),
            "README documents `{invocation}` but `stc help` does not mention {token}"
        );
        assert!(
            help.contains(&normalize(summary)),
            "README summary for `{invocation}` has drifted from `stc help`:\n  {summary}"
        );
    }

    // Backward: every command in the help USAGE section has a README row.
    let raw_help = Command::new(env!("CARGO_BIN_EXE_stc"))
        .arg("help")
        .output()
        .unwrap()
        .stdout;
    let raw_help = String::from_utf8(raw_help).unwrap();
    let mut commands_seen = 0;
    for line in raw_help.lines() {
        let Some(rest) = line.strip_prefix("    stc ") else {
            continue;
        };
        let command = rest.split_whitespace().next().expect("command name");
        commands_seen += 1;
        assert!(
            rows.iter().any(|(invocation, _)| {
                invocation == &format!("stc {command}") || invocation == command
            }),
            "`stc {command}` is in `stc help` USAGE but missing from the README table"
        );
    }
    assert!(
        commands_seen >= 6,
        "expected the full USAGE command list, parsed only {commands_seen}"
    );
}
