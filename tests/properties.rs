//! Cross-crate property tests: every machine, random or decomposable, must
//! survive the full synthesis pipeline with behaviour preserved.

use proptest::prelude::*;
use stc::fsm::{crossed_product, random_machine};
use stc::prelude::*;

fn arb_machine() -> impl Strategy<Value = Mealy> {
    (2usize..8, 1usize..5, 1usize..4, any::<u64>())
        .prop_map(|(s, i, o, seed)| random_machine("prop_e2e", s, i, o, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_preserves_behaviour_end_to_end(machine in arb_machine(), word in proptest::collection::vec(0usize..5, 0..24)) {
        let word: Vec<usize> = word.into_iter().map(|i| i % machine.num_inputs()).collect();
        let outcome = solve(&machine);
        let realization = outcome.best.realize(&machine);
        prop_assert!(realization.verify(&machine).is_none());
        let (spec, _) = machine.run_from_reset(&word);
        let (real, _) = realization.machine.run(realization.alpha_index(machine.reset_state()), &word);
        prop_assert_eq!(spec, real);
    }

    #[test]
    fn synthesised_monolithic_logic_matches_the_machine(machine in arb_machine()) {
        let encoded = EncodedMachine::new(&machine, EncodingStrategy::Binary);
        let logic = synthesize_controller(&encoded, SynthOptions::default());
        for s in 0..machine.num_states() {
            for i in 0..machine.num_inputs() {
                let mut inputs = encoded.input_encoding.bits_of(i);
                inputs.extend(encoded.state_encoding.bits_of(s));
                let got = logic.block.netlist.evaluate(&inputs);
                let mut expected = encoded.state_encoding.bits_of(machine.next_state(s, i));
                expected.extend(encoded.output_encoding.bits_of(machine.output(s, i)));
                prop_assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn crossed_products_always_get_cheap_realizations(a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let a = random_machine("a", 2, 2, 2, a_seed);
        let b = random_machine("b", 2, 2, 2, b_seed);
        let product = crossed_product(&a, &b).unwrap();
        let outcome = solve(&product);
        prop_assert!(outcome.pipeline_flipflops() <= 2);
        let realization = outcome.best.realize(&product);
        prop_assert!(realization.verify(&product).is_none());
    }

    #[test]
    fn exhaustive_bist_detects_every_fault_of_small_controllers(machine in arb_machine()) {
        // For controllers with a small combinational input space, applying the
        // exhaustive pattern set must detect every single-stuck-at fault of
        // the two-level implementation (it is prime-irredundant enough for
        // full testability after minimisation is not guaranteed in general,
        // so we only require that the detected set equals what output
        // comparison can possibly detect, i.e. coverage is monotone in
        // observability).
        let encoded = EncodedMachine::new(&machine, EncodingStrategy::Binary);
        let logic = synthesize_controller(&encoded, SynthOptions::default());
        let netlist = &logic.block.netlist;
        if netlist.num_inputs() > 8 {
            return Ok(());
        }
        let faults = stc::bist::fault_list(netlist);
        let patterns = stc::bist::exhaustive_patterns(netlist.num_inputs());
        let all = stc::bist::simulate_faults(netlist, &patterns, &faults, None);
        let restricted = stc::bist::simulate_faults(netlist, &patterns, &faults, Some(&[0]));
        prop_assert!(restricted.detected <= all.detected);
        prop_assert!(all.coverage() <= 1.0 + 1e-12);
    }
}
