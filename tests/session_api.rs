//! Integration tests of the `Synthesis` session API: typed partial flows,
//! cooperative cancellation, event ordering, and byte-identity of the
//! deprecated shims.

use stc::pipeline::{embedded_corpus, filter_by_names, MachineStatus};
use stc::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn by_name(name: &str) -> Mealy {
    stc::fsm::benchmarks::by_name(name).unwrap().machine
}

#[test]
fn decompose_only_is_a_first_class_partial_flow() {
    let session = Synthesis::with_defaults();
    let machine = by_name("shiftreg");
    let decomposition = session.decompose_only(&machine);
    assert!(decomposition.verified);
    assert!(!decomposition.cancelled());
    assert_eq!(decomposition.pipeline_flipflops(), 3);
    // The artifact is self-contained: its solve report matches the one the
    // full flow embeds.
    let report = decomposition.solve_report();
    assert_eq!(report.pipeline_ff, 3);
    assert!(report.realization_verified);
}

#[test]
fn a_flow_resumes_from_a_stored_encoding() {
    let machine = by_name("tav");
    // Produce and "store" the encoding with one session…
    let encoded = {
        let session = Synthesis::with_defaults();
        let decomposition = session.decompose_only(&machine);
        session.encode(&decomposition).unwrap()
    };
    // …then resume from it with a fresh, differently configured session.
    let resumer = Synthesis::builder().patterns_per_session(32).build();
    let netlist = resumer.synthesize_logic(&encoded);
    let plan = resumer.plan_bist(&netlist);
    assert_eq!(plan.result.session1.patterns, 32);
    assert!(plan.result.overall_coverage() > 0.5);
}

/// An observer that requests a stop as soon as the solver reports its first
/// progress tick (i.e. mid-search), recording what it saw.
#[derive(Default)]
struct CancelAfterFirstProgress {
    progress_events: AtomicU64,
}

impl Observer for CancelAfterFirstProgress {
    fn on_event(&self, event: &Event<'_>) {
        if matches!(event, Event::SolverProgress { .. }) {
            self.progress_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn should_cancel(&self) -> bool {
        self.progress_events.load(Ordering::Relaxed) > 0
    }
}

#[test]
fn a_cancelled_search_returns_a_well_formed_typed_result() {
    // `tbk` investigates ~28k nodes under the pipeline defaults, so the
    // first progress tick (every 4096 nodes) lands mid-search.
    let machine = by_name("tbk");
    let observer = Arc::new(CancelAfterFirstProgress::default());
    let session = Synthesis::builder()
        .set("solver.stop_at_lower_bound", "true")
        .unwrap()
        .observer(observer.clone())
        .build();
    let decomposition = session.decompose_only(&machine);

    // Cancellation is cooperative but must be observed mid-search here.
    assert!(decomposition.cancelled(), "the observer's stop was ignored");
    assert!(decomposition.outcome.stats.budget_exhausted);
    let uncancelled = Synthesis::with_defaults().decompose_only(&machine);
    assert!(
        decomposition.outcome.stats.nodes_investigated
            < uncancelled.outcome.stats.nodes_investigated,
        "cancellation did not shorten the search"
    );
    // The typed artifact is still fully usable: best-so-far solution,
    // verified realization (the trivial doubling pair at worst).
    assert!(decomposition.verified);
    assert!(decomposition.outcome.best.cost.s1() <= machine.num_states());
    assert!(observer.progress_events.load(Ordering::Relaxed) >= 1);
}

/// An observer that requests a stop exactly once (armed by the first
/// progress tick, disarmed by the first positive poll) — the "skip the
/// current machine, keep the suite going" shape.
#[derive(Default)]
struct CancelOnce {
    armed: AtomicU64,
}

impl Observer for CancelOnce {
    fn on_event(&self, event: &Event<'_>) {
        if matches!(event, Event::SolverProgress { .. }) {
            self.armed.store(1, Ordering::Relaxed);
        }
    }

    fn should_cancel(&self) -> bool {
        self.armed.swap(0, Ordering::Relaxed) == 1
    }
}

/// A cancellation whose observer has stopped requesting by the time the
/// solve stage returns must still be reported `cancelled` — not mistaken
/// for a timeout (no deadline is configured here at all).
#[test]
fn a_non_latching_cancel_is_reported_cancelled_not_timed_out() {
    let corpus = filter_by_names(embedded_corpus(), &["tbk".to_string()]).unwrap();
    let session = Synthesis::builder()
        .jobs(1)
        .observer(Arc::new(CancelOnce::default()))
        .build();
    let run = session.run_suite(&corpus, "cancel-once");
    let tbk = &run.report.machines[0];
    assert_eq!(tbk.status, MachineStatus::Cancelled);
    assert!(tbk.solve.is_some());
}

/// Under parallel subtree exploration a one-shot cancel can be consumed by
/// a speculative pass whose outcome the reduction discards; the stop must
/// still be reflected in the typed result.
#[test]
fn a_cancel_granted_during_parallel_speculation_is_still_reported() {
    #[derive(Default)]
    struct CancelOnceCounting {
        armed: AtomicU64,
        granted: AtomicU64,
    }
    impl Observer for CancelOnceCounting {
        fn on_event(&self, event: &Event<'_>) {
            if matches!(event, Event::SolverProgress { .. }) {
                self.armed.store(1, Ordering::Relaxed);
            }
        }
        fn should_cancel(&self) -> bool {
            let granted = self.armed.swap(0, Ordering::Relaxed) == 1;
            if granted {
                self.granted.fetch_add(1, Ordering::Relaxed);
            }
            granted
        }
    }
    let machine = by_name("tbk");
    let observer = Arc::new(CancelOnceCounting::default());
    let session = Synthesis::builder()
        .solver_jobs(4)
        .observer(observer.clone())
        .build();
    let decomposition = session.decompose_only(&machine);
    // Whether the one-shot stop lands on a speculative worker or in the
    // reduction is scheduling-dependent; what must hold is that a granted
    // stop is never swallowed.
    if observer.granted.load(Ordering::Relaxed) > 0 {
        assert!(
            decomposition.cancelled(),
            "a granted stop disappeared from the typed result"
        );
    }
    assert!(decomposition.verified);
}

/// Progress events report the approximate *cumulative* node count: the
/// values must track the search's true size, not double-count subtrees.
#[test]
fn solver_progress_counts_track_the_true_node_count() {
    let machine = by_name("tbk");
    #[derive(Default)]
    struct MaxProgress(AtomicU64);
    impl Observer for MaxProgress {
        fn on_event(&self, event: &Event<'_>) {
            if let Event::SolverProgress { nodes, .. } = event {
                self.0.fetch_max(*nodes, Ordering::Relaxed);
            }
        }
    }
    let observer = Arc::new(MaxProgress::default());
    let session = Synthesis::builder().observer(observer.clone()).build();
    let decomposition = session.decompose_only(&machine);
    let investigated = decomposition.outcome.stats.nodes_investigated;
    let reported = observer.0.load(Ordering::Relaxed);
    assert!(
        reported >= stc::synth::PROGRESS_INTERVAL,
        "the search is large enough to tick at least once (saw {reported})"
    );
    assert!(
        reported <= investigated + stc::synth::PROGRESS_INTERVAL,
        "progress {reported} overshoots the {investigated} nodes actually investigated"
    );
}

#[test]
fn a_cancelled_corpus_run_reports_every_machine() {
    let corpus = filter_by_names(
        embedded_corpus(),
        &["tbk".to_string(), "tav".to_string(), "mc".to_string()],
    )
    .unwrap();
    let observer = Arc::new(CancelAfterFirstProgress::default());
    let session = Synthesis::builder().jobs(1).observer(observer).build();
    let run = session.run_suite(&corpus, "cancel-test");
    // The report still covers the full corpus, in corpus order.
    assert_eq!(run.report.machines.len(), 3);
    assert_eq!(run.report.machines[0].name, "mc");
    // `tbk` is last in corpus order here? No: corpus order is embedded order
    // (mc, tav, tbk).  tbk triggers the cancellation; by then mc and tav
    // (1 and 4 nodes) are long done.
    let tbk = &run.report.machines[2];
    assert_eq!(tbk.name, "tbk");
    assert_eq!(tbk.status, MachineStatus::Cancelled);
    assert!(tbk.solve.is_some(), "partial results are kept");
    assert_eq!(run.report.summary.cancelled, 1);
    assert_eq!(run.report.summary.full, 2);
    // The cancelled counter appears in the JSON only when nonzero.
    assert!(run.report.to_json_string().contains("\"cancelled\": 1"));
}

/// Observer recording event lines for ordering assertions.
#[derive(Default)]
struct Recorder(Mutex<Vec<String>>);

impl Observer for Recorder {
    fn on_event(&self, event: &Event<'_>) {
        let line = match event {
            Event::StageStarted { machine, stage } => format!("{machine}:{stage}:start"),
            Event::StageFinished { machine, stage } => format!("{machine}:{stage}:finish"),
            Event::MachineFinished { machine, status } => format!("{machine}:done:{status}"),
            _ => return,
        };
        self.0.lock().unwrap().push(line);
    }
}

#[test]
fn stage_events_bracket_each_stage_in_order() {
    let observer = Arc::new(Recorder::default());
    let session = Synthesis::builder()
        .patterns_per_session(16)
        .observer(observer.clone())
        .jobs(1)
        .build();
    let corpus = filter_by_names(embedded_corpus(), &["tav".to_string()]).unwrap();
    let run = session.run_suite(&corpus, "events");
    assert_eq!(run.report.machines[0].status, MachineStatus::Full);
    let events = observer.0.lock().unwrap().clone();
    assert_eq!(
        events,
        [
            "tav:solve:start",
            "tav:solve:finish",
            "tav:encode:start",
            "tav:encode:finish",
            "tav:logic:start",
            "tav:logic:finish",
            "tav:bist:start",
            "tav:bist:finish",
            "tav:done:full",
        ]
    );
}

/// Events are side-channel only: an observer that never cancels must leave
/// the report byte-identical to an observer-free run.
#[test]
fn observers_never_change_the_report() {
    let corpus = filter_by_names(
        embedded_corpus(),
        &[
            "tav".to_string(),
            "shiftreg".to_string(),
            "bbara".to_string(),
        ],
    )
    .unwrap();
    let bare = Synthesis::builder().jobs(2).build().run_suite(&corpus, "s");
    let observed = Synthesis::builder()
        .jobs(2)
        .observer(Arc::new(Recorder::default()))
        .build()
        .run_suite(&corpus, "s");
    assert_eq!(
        bare.report.to_json_string(),
        observed.report.to_json_string()
    );
}

/// The deprecated free functions are thin shims over the session: their
/// reports must be byte-identical.
#[test]
#[allow(deprecated)]
fn the_deprecated_shims_are_byte_identical_to_the_session() {
    let corpus =
        filter_by_names(embedded_corpus(), &["tav".to_string(), "dk27".to_string()]).unwrap();
    let config = PipelineConfig::default();
    let shim = run_corpus(&corpus, &config, 2, "shim");
    let session = Synthesis::builder()
        .config(StcConfig::from_pipeline(config, 2))
        .build()
        .run_suite(&corpus, "shim");
    assert_eq!(shim.report, session.report);
    assert_eq!(
        shim.report.to_json_string(),
        session.report.to_json_string()
    );
}

#[test]
fn builder_layers_defaults_profile_and_overrides() {
    let session = Synthesis::builder()
        .profile("[solver]\nmax_nodes = 11111\n[bist]\npatterns = 8\n")
        .unwrap()
        .set("solver.max_nodes", "22222")
        .unwrap()
        .build();
    // The override layer wins over the profile layer…
    assert_eq!(session.config().pipeline.solver.max_nodes, 22222);
    // …which wins over the defaults.
    assert_eq!(session.config().pipeline.patterns_per_session, 8);
    // The effective config is what reports echo.
    let corpus = filter_by_names(embedded_corpus(), &["tav".to_string()]).unwrap();
    let run = session.run_suite(&corpus, "layered");
    assert_eq!(run.report.config.max_nodes, 22222);
    assert_eq!(run.report.config.patterns_per_session, 8);
}
