//! The README's speedup-vs-threads tables must be the exact render of the
//! committed `crates/bench/BENCH_scale.json` through the `stc scale-table`
//! code path.  Like `readme_sync`, this is an anti-drift gate: after an
//! accepted re-baseline, regenerate the README block with
//! `cargo run --release --bin stc -- scale-table`.

use std::path::Path;
use stc_pipeline::{format_speedup_table, parse_baseline};

#[test]
fn readme_scale_tables_match_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline_path = root.join("crates/bench/BENCH_scale.json");
    let text =
        std::fs::read_to_string(&baseline_path).expect("committed BENCH_scale.json is readable");
    let measurements =
        parse_baseline(&text, &baseline_path).expect("committed BENCH_scale.json parses");
    let table = format_speedup_table(&measurements);
    assert!(
        table.contains("| scale_"),
        "committed BENCH_scale.json no longer contains the scale groups"
    );
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md is readable");
    for line in table.lines().filter(|l| !l.trim().is_empty()) {
        assert!(
            readme.contains(line),
            "README.md is missing this line of the table rendered from \
             crates/bench/BENCH_scale.json:\n  {line}\nRegenerate the README \
             block with: cargo run --release --bin stc -- scale-table"
        );
    }
}
