//! Determinism guarantees of the batch pipeline: the serial fallback and any
//! parallel run must produce byte-identical JSON reports, and a machine's
//! report must not depend on the worker count it happened to run under.

use stc::pipeline::{
    embedded_corpus, filter_by_names, CorpusEntry, GateLevelLimits, PipelineConfig,
};
use stc::prelude::*;

/// A reduced-budget configuration so the full embedded suite stays fast in
/// debug-mode test runs; determinism must hold for every configuration.
fn test_config() -> PipelineConfig {
    PipelineConfig {
        solver: SolverConfig {
            max_nodes: 5_000,
            time_limit: None,
            lemma1_pruning: true,
            stop_at_lower_bound: true,
            branch_and_bound: true,
            parallel_subtrees: 1,
            steal_seed: 0,
        },
        patterns_per_session: 32,
        gate_level: GateLevelLimits {
            max_states: 8,
            max_inputs: 8,
        },
        ..PipelineConfig::default()
    }
}

/// The session-API equivalent of the old `run_corpus(corpus, config, jobs,
/// name)` call shape the tests below exercise.
fn run_corpus(
    corpus: &[CorpusEntry],
    config: &PipelineConfig,
    jobs: usize,
    name: &str,
) -> SuiteRun {
    Synthesis::builder()
        .config(StcConfig::from_pipeline(*config, jobs))
        .build()
        .run_suite(corpus, name)
}

#[test]
fn parallel_report_is_byte_identical_to_the_serial_fallback() {
    let corpus = embedded_corpus();
    let config = test_config();
    let serial = run_corpus(&corpus, &config, 1, "embedded");
    let serial_json = serial.report.to_json_string();
    for jobs in [2, 4, 13, 32] {
        let parallel = run_corpus(&corpus, &config, jobs, "embedded");
        assert_eq!(serial.report, parallel.report, "jobs = {jobs}");
        assert_eq!(
            serial_json,
            parallel.report.to_json_string(),
            "jobs = {jobs}: JSON must match byte for byte"
        );
    }
    // Sanity: the suite actually ran and produced substantive sections.
    assert_eq!(serial.report.machines.len(), 13);
    assert!(serial.report.summary.full > 0);
    assert!(serial.report.summary.nontrivial >= 4);
}

#[test]
fn report_is_deterministic_across_repeated_runs() {
    let corpus = filter_by_names(
        embedded_corpus(),
        &["tav".to_string(), "shiftreg".to_string()],
    )
    .unwrap();
    let config = test_config();
    let first = run_corpus(&corpus, &config, 2, "subset");
    let second = run_corpus(&corpus, &config, 2, "subset");
    assert_eq!(
        first.report.to_json_string(),
        second.report.to_json_string()
    );
}

/// The solver's parallel subtree exploration must be invisible in the
/// report: its deterministic reduction is byte-identical to serial, and the
/// worker count is deliberately not echoed in the config section.
#[test]
fn report_is_independent_of_solver_parallelism() {
    let corpus = filter_by_names(
        embedded_corpus(),
        &["bbara".to_string(), "dk27".to_string(), "tbk".to_string()],
    )
    .unwrap();
    let config = test_config();
    let serial = run_corpus(&corpus, &config, 1, "subset");
    for solver_jobs in [2, 4, 16] {
        let mut parallel_config = test_config();
        parallel_config.solver.parallel_subtrees = solver_jobs;
        let parallel = run_corpus(&corpus, &parallel_config, 1, "subset");
        assert_eq!(
            serial.report.to_json_string(),
            parallel.report.to_json_string(),
            "solver_jobs = {solver_jobs}"
        );
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Per-machine pipeline results are independent of the worker count: for
    /// a random worker count and a random slice of the (small-machine)
    /// corpus, every machine's report equals its serial single-machine run.
    #[test]
    fn per_machine_results_are_independent_of_worker_count(
        jobs in 2usize..9,
        start in 0usize..4,
        len in 1usize..5,
    ) {
        let small: Vec<_> = embedded_corpus()
            .into_iter()
            .filter(|e| e.machine.num_states() <= 8 && e.machine.num_inputs() <= 8)
            .collect();
        let start = start.min(small.len() - 1);
        let end = (start + len).min(small.len());
        let slice = &small[start..end];
        let config = test_config();

        let parallel = run_corpus(slice, &config, jobs, "slice");
        proptest::prop_assert_eq!(parallel.report.machines.len(), slice.len());
        for (entry, from_parallel) in slice.iter().zip(&parallel.report.machines) {
            let alone = run_corpus(std::slice::from_ref(entry), &config, 1, "slice");
            proptest::prop_assert_eq!(
                &alone.report.machines[0],
                from_parallel,
                "machine {} changed under jobs={}",
                entry.name(),
                jobs
            );
        }
    }
}
