//! The code-emission regression gate, enforced from the test suite.
//!
//! Two layers of defence:
//!
//! 1. **Digest golden** — CI diffs `stc emit --suite embedded --jobs 2`
//!    against `tests/golden/emit.json`; the tests here enforce the same
//!    golden from `cargo test`, plus worker-count determinism and the
//!    emit-off byte-identity of the batch report.  Re-golden after an
//!    intentional codegen change:
//!
//!    ```text
//!    cargo run --release --bin stc -- emit --suite embedded --jobs 2 \
//!        > tests/golden/emit.json
//!    ```
//!
//! 2. **Differential compile-and-run** — for every gate-level embedded
//!    machine the emitted Rust module is compiled *standalone* with `rustc`
//!    (proving the `#![no_std]` module has no hidden dependencies), then a
//!    generated harness links against it and checks the generated `step()`
//!    cycle-for-cycle against `Netlist::evaluate` over 1200 directed and
//!    pseudo-random steps, and the generated `self_test()` signatures
//!    against the session's own BIST simulation.  Codegen bugs that keep
//!    the digest stable (none) cannot exist, but codegen bugs introduced
//!    *with* an intentional re-golden are caught here.

use std::path::{Path, PathBuf};
use std::process::Command;

use stc::pipeline::{embedded_corpus, emit_json, StcConfig, SuiteRun, Synthesis};

fn emit_suite(jobs: &str) -> SuiteRun {
    let mut config = StcConfig::default();
    config.set("emit.enabled", "true").unwrap();
    config.set("jobs", jobs).unwrap();
    Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded")
}

#[test]
fn embedded_emit_report_matches_the_committed_golden() {
    let run = emit_suite("2");
    let fresh = emit_json(&run.report).to_pretty();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/emit.json");
    let golden = std::fs::read_to_string(golden_path).expect("tests/golden/emit.json is committed");
    assert_eq!(
        fresh, golden,
        "the emitted-module digests diverged from tests/golden/emit.json; \
         if the codegen change is intentional, re-golden (see this file's \
         module docs) — the differential test below still has to pass"
    );
}

#[test]
fn emit_report_is_identical_across_worker_counts() {
    let serial = emit_suite("1").report.to_json_string();
    let parallel = emit_suite("4").report.to_json_string();
    assert_eq!(
        serial, parallel,
        "codegen must not depend on the worker count"
    );
}

#[test]
fn emit_off_report_matches_the_pre_emit_golden() {
    let mut config = StcConfig::default();
    config.set("jobs", "2").unwrap();
    let run = Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/embedded_suite.json"
    );
    let golden = std::fs::read_to_string(golden_path)
        .expect("tests/golden/embedded_suite.json is committed");
    assert_eq!(
        run.report.to_json_string(),
        golden,
        "with emit off, the suite report must stay byte-identical to the \
         pre-emit golden — the emit section is additive"
    );
}

/// Deterministic input sequence for the differential run: a directed prefix
/// (all-zero, all-one, every one-hot pattern) followed by LCG pseudo-random
/// words, `total` steps in all, each step one `u64` carrying the input bits
/// most significant bit first.
fn input_words(input_bits: usize, total: usize) -> Vec<u64> {
    let mask = if input_bits == 0 {
        0
    } else {
        u64::MAX >> (64 - input_bits)
    };
    let mut words = vec![0, 0, mask, mask];
    for k in 0..input_bits {
        words.push(1u64 << (input_bits - 1 - k));
    }
    let mut x: u64 = 0x5dee_ce66_d1ce_4e1d;
    while words.len() < total {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        words.push((x >> 32) & mask);
    }
    words.truncate(total);
    words
}

fn bits_of(word: u64, width: usize) -> Vec<bool> {
    (0..width)
        .map(|k| (word >> (width - 1 - k)) & 1 == 1)
        .collect()
}

fn word_of(bits: &[bool]) -> u64 {
    bits.iter().fold(0, |acc, &b| (acc << 1) | u64::from(b))
}

fn run_command(cmd: &mut Command, what: &str) {
    let output = cmd
        .output()
        .unwrap_or_else(|e| panic!("{what}: cannot spawn: {e}"));
    assert!(
        output.status.success(),
        "{what} failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn emitted_rust_compiles_standalone_and_matches_the_netlist() {
    const STEPS: usize = 1200;
    let scratch = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("emit-gate");
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let session = Synthesis::builder().jobs(1).build();
    let mut verified = 0usize;
    for entry in &embedded_corpus() {
        // Machines beyond the gate-level limits have no netlist to compile.
        let Ok(code) = session.emit_machine(entry) else {
            continue;
        };
        assert_eq!(code.modules.len(), 1, "{}", entry.name());
        let module = &code.modules[0];

        // The reference trace comes from the session's own typed artifacts:
        // the same netlists the BIST plan was computed from.
        let decomposition = session.decompose_only(&entry.machine);
        let encoded = session.encode(&decomposition).unwrap();
        let netlist = session.synthesize_logic(&encoded);
        let plan = session.plan_bist(&netlist);
        let logic = plan.logic.as_ref();
        let (ib, r1b, r2b) = (
            logic.input_bits as usize,
            logic.r1_bits as usize,
            logic.r2_bits as usize,
        );

        let inputs = input_words(ib, STEPS);
        let mut r1 = vec![false; r1b];
        let mut r2 = vec![false; r2b];
        let mut expected = Vec::with_capacity(STEPS);
        for &word in &inputs {
            let x = bits_of(word, ib);
            let mut lambda_in = x.clone();
            lambda_in.extend_from_slice(&r1);
            lambda_in.extend_from_slice(&r2);
            expected.push(word_of(&logic.output.netlist.evaluate(&lambda_in)));
            let mut c1_in = x.clone();
            c1_in.extend_from_slice(&r1);
            let next_r2 = logic.c1.netlist.evaluate(&c1_in);
            let mut c2_in = x;
            c2_in.extend_from_slice(&r2);
            r1 = logic.c2.netlist.evaluate(&c2_in);
            r2 = next_r2;
        }

        let dir = scratch.join(entry.name());
        std::fs::create_dir_all(&dir).expect("machine dir");
        let module_path = dir.join(&module.file_name);
        std::fs::write(&module_path, &module.source).expect("write module");

        // Standalone compile: the emitted file is its own no_std crate with
        // zero dependencies.
        let rlib = dir.join(format!("lib{}.rlib", module.module));
        run_command(
            Command::new("rustc")
                .args(["--edition", "2021", "--crate-type", "rlib", "-o"])
                .arg(&rlib)
                .arg(&module_path),
            &format!("{}: standalone rustc", entry.name()),
        );

        let harness = harness_source(
            &module.module,
            &inputs,
            &expected,
            plan.result.session1.good_signature,
            plan.result.session2.good_signature,
        );
        let harness_path = dir.join("harness.rs");
        std::fs::write(&harness_path, harness).expect("write harness");
        let harness_bin = dir.join("harness.bin");
        run_command(
            Command::new("rustc")
                .args(["--edition", "2021", "--extern"])
                .arg(format!("{}={}", module.module, rlib.display()))
                .arg("-o")
                .arg(&harness_bin)
                .arg(&harness_path),
            &format!("{}: harness rustc", entry.name()),
        );
        run_differential(&harness_bin, entry.name());
        verified += 1;
    }
    assert_eq!(
        verified, 9,
        "the differential gate must cover all 9 gate-level embedded machines"
    );
}

fn run_differential(binary: &Path, machine: &str) {
    let output = Command::new(binary)
        .output()
        .unwrap_or_else(|e| panic!("{machine}: cannot run harness: {e}"));
    assert!(
        output.status.success(),
        "{machine}: emitted controller diverged from the netlist/BIST \
         reference:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// A `std` harness crate that links the emitted module and replays the
/// reference trace: every `step()` output word is compared against the
/// `Netlist::evaluate` trace, and the self-test signatures against the
/// session's BIST simulation.
fn harness_source(module: &str, inputs: &[u64], expected: &[u64], sig1: u64, sig2: u64) -> String {
    let fmt = |words: &[u64]| {
        words
            .iter()
            .map(|w| format!("{w:#x}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "use {module} as ctrl;\n\
         \n\
         const INPUTS: [u64; {n}] = [{inputs}];\n\
         const EXPECTED: [u64; {n}] = [{expected}];\n\
         const SIG1: u64 = {sig1:#x};\n\
         const SIG2: u64 = {sig2:#x};\n\
         \n\
         fn main() {{\n\
         \x20   let mut c = ctrl::Controller::new();\n\
         \x20   for (i, (&word, &want)) in INPUTS.iter().zip(EXPECTED.iter()).enumerate() {{\n\
         \x20       let mut inputs = [false; ctrl::INPUT_BITS];\n\
         \x20       for k in 0..ctrl::INPUT_BITS {{\n\
         \x20           inputs[k] = (word >> (ctrl::INPUT_BITS - 1 - k)) & 1 == 1;\n\
         \x20       }}\n\
         \x20       let outputs = c.step(&inputs);\n\
         \x20       let mut got = 0u64;\n\
         \x20       for k in 0..ctrl::OUTPUT_BITS {{\n\
         \x20           got = (got << 1) | u64::from(outputs[k]);\n\
         \x20       }}\n\
         \x20       if got != want {{\n\
         \x20           eprintln!(\"step {{i}}: outputs {{got:#x}}, reference {{want:#x}}\");\n\
         \x20           std::process::exit(1);\n\
         \x20       }}\n\
         \x20   }}\n\
         \x20   if ctrl::self_test_session1() != SIG1 {{\n\
         \x20       eprintln!(\"session 1 signature {{:#x}}, reference {{SIG1:#x}}\", ctrl::self_test_session1());\n\
         \x20       std::process::exit(2);\n\
         \x20   }}\n\
         \x20   if ctrl::self_test_session2() != SIG2 {{\n\
         \x20       eprintln!(\"session 2 signature {{:#x}}, reference {{SIG2:#x}}\", ctrl::self_test_session2());\n\
         \x20       std::process::exit(3);\n\
         \x20   }}\n\
         \x20   assert!(ctrl::self_test());\n\
         }}\n",
        n = inputs.len(),
        inputs = fmt(inputs),
        expected = fmt(expected),
    )
}
