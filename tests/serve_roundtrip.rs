//! Drives one real `stc serve` subprocess through the JSON-lines protocol:
//! requests on stdin, responses on stdout, EOF shuts the loop down.

use stc::pipeline::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

#[test]
fn serve_round_trips_the_tav_machine_through_a_real_subprocess() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stc"))
        .args(["serve", "--jobs", "1", "--patterns", "32"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("the stc binary spawns");

    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut lines = stdout.lines();

    let ping = r#"{"id": 41, "ping": true}"#;
    let request = r#"{"id": 42, "machine": "tav", "overrides": {"solver.max_nodes": 50000}}"#;
    writeln!(stdin, "{ping}").unwrap();
    writeln!(stdin, "{request}").unwrap();

    // The ping answers immediately, proving the loop is interactive (not
    // read-all-then-answer).
    let pong = Json::parse(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(pong.get("id").unwrap().as_u64(), Some(41));
    assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

    let response = Json::parse(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(response.get("id").unwrap().as_u64(), Some(42));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("machine").unwrap().as_str(), Some("tav"));

    // The effective config echoes the per-request override and the CLI flag.
    let config = response.get("config").unwrap();
    assert_eq!(config.get("max_nodes").unwrap().as_u64(), Some(50_000));
    assert_eq!(
        config.get("patterns_per_session").unwrap().as_u64(),
        Some(32)
    );

    // The report carries the full flow: tav decomposes into 2 + 2 states.
    let report = response.get("report").unwrap();
    assert_eq!(report.get("status").unwrap().as_str(), Some("full"));
    let solve = report.get("solve").unwrap();
    assert_eq!(solve.get("s1").unwrap().as_u64(), Some(2));
    assert_eq!(solve.get("s2").unwrap().as_u64(), Some(2));
    assert_eq!(solve.get("pipeline_ff").unwrap().as_u64(), Some(2));
    assert!(report.get("bist").unwrap().get("session1").is_some());

    // EOF ends the loop and the process exits cleanly.
    drop(stdin);
    let status = child.wait().expect("serve exits");
    assert!(status.success());
    assert!(
        lines.next().is_none(),
        "no extra output after the responses"
    );
}

#[test]
fn serve_survives_bad_requests_and_keeps_answering() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stc"))
        .args(["serve", "--jobs", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("the stc binary spawns");

    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut lines = stdout.lines();

    writeln!(stdin, "this is not json").unwrap();
    let error = Json::parse(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(error.get("ok"), Some(&Json::Bool(false)));

    let ping = r#"{"id": 2, "ping": true}"#;
    writeln!(stdin, "{ping}").unwrap();
    let pong = Json::parse(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

    drop(stdin);
    assert!(child.wait().unwrap().success());
}
