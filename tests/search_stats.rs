//! The search-stats regression gate, enforced from the test suite.
//!
//! CI diffs `stc run --suite embedded --stats-out` against
//! `tests/golden/search_stats.json`; this test enforces the same golden from
//! `cargo test`, so a pruning regression (more nodes investigated, fewer
//! subtrees discarded) fails fast locally even when wall-clock noise hides
//! it from the perf gate.  Re-golden after an intentional search change:
//!
//! ```text
//! cargo run --release --bin stc -- run --suite embedded --jobs 2 \
//!     --out tests/golden/embedded_suite.json \
//!     --stats-out tests/golden/search_stats.json
//! ```
//!
//! and review the stats diff like any other code change.

use stc::pipeline::{
    embedded_corpus, search_stats_json, GateLevelLimits, PipelineConfig, StcConfig, Synthesis,
};

#[test]
fn embedded_search_stats_match_the_committed_golden() {
    // Skip the gate-level stages: the search statistics depend only on the
    // solver configuration, which must stay the pipeline default.
    let config = PipelineConfig {
        gate_level: GateLevelLimits {
            max_states: 0,
            max_inputs: 0,
        },
        ..PipelineConfig::default()
    };
    assert_eq!(
        config.solver,
        PipelineConfig::default().solver,
        "the gate must measure the default solver configuration"
    );
    let run = Synthesis::builder()
        .config(StcConfig::from_pipeline(config, 2))
        .build()
        .run_suite(&embedded_corpus(), "embedded");
    let fresh = search_stats_json(&run.report).to_pretty();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/search_stats.json"
    );
    let golden =
        std::fs::read_to_string(golden_path).expect("tests/golden/search_stats.json is committed");
    assert_eq!(
        fresh, golden,
        "search-effort statistics diverged from tests/golden/search_stats.json; \
         if the change is intentional, re-golden (see this file's module docs) \
         and review the pruning impact"
    );
}
