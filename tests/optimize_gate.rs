//! The plan-optimizer regression gate, enforced from the test suite.
//!
//! CI diffs `stc optimize --suite embedded --jobs 2` against
//! `tests/golden/optimize.json`; this test enforces the same golden from
//! `cargo test`, so a change in the candidate enumeration, the detection
//! profiles, or the truncation rule that moves any machine's optimized plan
//! fails fast locally.  Re-golden after an intentional change:
//!
//! ```text
//! cargo run --release --bin stc -- optimize --suite embedded --jobs 2 \
//!     --out tests/golden/optimize.json
//! ```
//!
//! and review the diff like any other code change — a machine whose
//! `total_length` grows means the search found a worse plan; one whose
//! `target_reached` flips to false no longer reaches 100% single-stuck-at
//! coverage within the budget.

use stc::pipeline::{embedded_corpus, optimize_json, StcConfig, SuiteRun, Synthesis};

fn optimize_suite(jobs: &str) -> SuiteRun {
    let mut config = StcConfig::default();
    config.set("coverage.optimize.enabled", "true").unwrap();
    config.set("jobs", jobs).unwrap();
    Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded")
}

#[test]
fn embedded_optimize_report_matches_the_committed_golden() {
    let run = optimize_suite("2");
    let fresh = optimize_json(&run.report).to_pretty();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/optimize.json");
    let golden =
        std::fs::read_to_string(golden_path).expect("tests/golden/optimize.json is committed");
    assert_eq!(
        fresh, golden,
        "the optimized-plan report diverged from tests/golden/optimize.json; \
         if the change is intentional, re-golden (see this file's module docs) \
         and review the test-length impact"
    );

    // The headline claim, measured: for every embedded machine that reaches
    // the gate-level stages, the optimizer finds a two-session plan with
    // 100% single-stuck-at coverage that is no longer than the fixed
    // 2 × 256 baseline — and strictly shorter on at least one machine.
    let mut gate_level_machines = 0;
    let mut strictly_shorter = 0;
    for machine in &run.report.machines {
        let Some(optimize) = &machine.optimize else {
            continue;
        };
        gate_level_machines += 1;
        assert!(optimize.target_reached, "{}", machine.name);
        assert_eq!(optimize.coverage, 1.0, "{}", machine.name);
        assert!(
            optimize.total_length <= optimize.baseline_length,
            "{}: optimized plan longer than the fixed baseline",
            machine.name
        );
        if optimize.total_length < optimize.baseline_length {
            strictly_shorter += 1;
        }
    }
    assert_eq!(
        gate_level_machines, 9,
        "the claim must cover the 9 full machines"
    );
    assert!(strictly_shorter >= 1);
}

#[test]
fn optimize_report_is_identical_across_worker_counts() {
    let serial = optimize_suite("1").report.to_json_string();
    let parallel = optimize_suite("4").report.to_json_string();
    assert_eq!(
        serial, parallel,
        "the optimizer's candidate search must not depend on the worker count"
    );
}

#[test]
fn optimizer_off_report_matches_the_pre_optimizer_golden() {
    let mut config = StcConfig::default();
    config.set("jobs", "2").unwrap();
    let run = Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/embedded_suite.json"
    );
    let golden = std::fs::read_to_string(golden_path)
        .expect("tests/golden/embedded_suite.json is committed");
    assert_eq!(
        run.report.to_json_string(),
        golden,
        "with the optimizer off, the suite report must stay byte-identical \
         to the pre-optimizer golden — the optimize section is additive"
    );
}
