//! The artifact cache must be invisible in responses and visible in speed.
//!
//! * Property: for any interleaving of machine requests (with or without
//!   per-request overrides), a cache-enabled serve loop answers with the
//!   **same bytes** as a cache-disabled one.
//! * Eviction under pressure (`max_entries: 1`) keeps responses correct.
//! * Concurrent clients replaying the same machine over TCP all read
//!   identical bytes.
//! * The cached path is pinned at >= 10x faster than fresh synthesis.

use proptest::prelude::*;
use stc::pipeline::{
    serve_with, CacheLimits, Json, NetOptions, NetServer, ServeOptions, StcConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Machines small enough to synthesize many times in a test.
const MACHINES: &[&str] = &["tav", "mc", "dk27", "bbtas"];

/// A fast base config shared by all serve loops of this file.
fn base() -> StcConfig {
    let mut config = StcConfig::default();
    config.set("solver.max_nodes", "20000").unwrap();
    config.set("bist.patterns", "32").unwrap();
    config
}

/// Runs one in-process serve loop over `requests` and returns the raw
/// response bytes.  `jobs: 1` keeps responses in request order, so outputs
/// of different loops are comparable as whole transcripts.
fn transcript(requests: &str, cache: Option<CacheLimits>) -> String {
    let mut output = Vec::new();
    serve_with(
        requests.as_bytes(),
        &mut output,
        &base(),
        &ServeOptions { jobs: 1, cache },
    )
    .expect("serve loop runs");
    String::from_utf8(output).expect("responses are UTF-8")
}

/// One request line for machine index `i`, optionally with an override that
/// changes the effective config (and therefore the cache key).
fn request_line(id: usize, machine_index: usize, with_override: bool) -> String {
    let name = MACHINES[machine_index % MACHINES.len()];
    if with_override {
        format!(
            "{{\"id\": {id}, \"machine\": \"{name}\", \"overrides\": {{\"bist.patterns\": 64}}}}\n"
        )
    } else {
        format!("{{\"id\": {id}, \"machine\": \"{name}\"}}\n")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of (machine, override?) requests produces the same
    /// transcript with the cache on as with the cache off — hits replay the
    /// exact bytes a fresh synthesis would have produced.
    #[test]
    fn any_interleaving_is_byte_identical_to_a_cold_server(
        picks in collection::vec((0usize..MACHINES.len(), any::<bool>()), 1..10)
    ) {
        let requests: String = picks
            .iter()
            .enumerate()
            .map(|(id, &(machine, with_override))| request_line(id, machine, with_override))
            .collect();
        let cold = transcript(&requests, None);
        let cached = transcript(&requests, Some(CacheLimits::default()));
        prop_assert_eq!(cold, cached);
    }
}

#[test]
fn eviction_under_pressure_keeps_responses_byte_identical() {
    // Two machines fighting over a single cache slot: every request evicts
    // the other machine, so the loop exercises miss -> insert -> evict on
    // every line, and a final `stats` request proves evictions happened.
    let mut requests = String::new();
    for id in 0..8 {
        requests.push_str(&request_line(id, id % 2, false));
    }
    let cold = transcript(&requests, None);
    requests.push_str("{\"id\": 99, \"stats\": true}\n");
    let squeezed = transcript(
        &requests,
        Some(CacheLimits {
            max_entries: 1,
            ..CacheLimits::default()
        }),
    );
    let squeezed = squeezed.trim_end_matches('\n');
    let (machine_lines, stats_line) = squeezed.rsplit_once('\n').expect("stats line present");
    assert_eq!(cold.trim_end_matches('\n'), machine_lines);
    let stats = Json::parse(stats_line).expect("stats response is JSON");
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
    assert!(
        cache.get("evictions").unwrap().as_u64().unwrap() >= 6,
        "alternating machines through a 1-entry cache must evict"
    );
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Self { writer, reader }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("write");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line
    }
}

#[test]
fn concurrent_cache_hits_are_deterministic() {
    let server = NetServer::bind("127.0.0.1:0", &base(), NetOptions::default()).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    // Prime the cache, keeping the reference bytes.
    let reference = Client::connect(addr).roundtrip("{\"id\": 7, \"machine\": \"tav\"}");

    // Six clients hammer the same entry concurrently; every hit must replay
    // exactly the primed bytes.
    let lines: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr);
                    (0..5)
                        .map(|_| client.roundtrip("{\"id\": 7, \"machine\": \"tav\"}"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    for line in &lines {
        assert_eq!(line, &reference);
    }

    let stats = Json::parse(&Client::connect(addr).roundtrip("{\"id\": 8, \"stats\": true}"))
        .expect("stats JSON");
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 30);

    handle.shutdown();
    running.join().unwrap().unwrap();
}

#[test]
fn the_cached_path_is_at_least_ten_times_faster() {
    // Minimum-of-5 roundtrips on each server: the minimum strips scheduler
    // noise, leaving the true service time, so the 10x pin (the ISSUE's
    // acceptance bar; typically 50-200x) cannot flap under parallel tests.
    let min_roundtrip = |cache: Option<CacheLimits>| -> u128 {
        let options = NetOptions {
            cache,
            ..NetOptions::default()
        };
        let server = NetServer::bind("127.0.0.1:0", &base(), options).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let running = std::thread::spawn(move || server.run());
        let mut client = Client::connect(addr);
        // Untimed: connection setup, and (with the cache on) the priming miss.
        client.roundtrip("{\"id\": 1, \"machine\": \"tav\"}");
        let best = (0..5)
            .map(|_| {
                let start = Instant::now();
                let line = client.roundtrip("{\"id\": 1, \"machine\": \"tav\"}");
                assert!(line.contains("\"ok\":true"));
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap();
        handle.shutdown();
        running.join().unwrap().unwrap();
        best
    };
    let cold = min_roundtrip(None);
    let warm = min_roundtrip(Some(CacheLimits::default()));
    assert!(
        cold >= 10 * warm,
        "cached roundtrip must be >= 10x faster: cold {cold} ns, warm {warm} ns"
    );
}
