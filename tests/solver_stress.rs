//! Stress tests for the iterative OSTR search core.
//!
//! The pre-refactor solver recursed once per search-tree level and cloned
//! two `Vec<Vec<usize>>` partitions into every frame, so a machine with a
//! large symmetric-pair basis (deep strict-coarsening chains) could blow a
//! small thread stack.  The iterative engine keeps the whole κ chain in a
//! heap arena and must complete the same search inside a minimal stack.

use stc::partition::symmetric_basis;
use stc::prelude::*;

/// A 5-bit serial shift register: 32 states, 460 symmetric-basis elements,
/// and strict-coarsening chains of depth ~60 — the deepest DFS spine in the
/// test suite.  Shift registers are the richest known source of symmetric
/// pairs (every window partition pairs with a shifted copy of itself).
fn stress_machine() -> Mealy {
    let bits = 5u32;
    let n = 1usize << bits;
    let mut builder = Mealy::builder("wide_shiftreg", n, 2, 2);
    for s in 0..n {
        for i in 0..2 {
            let next = ((s << 1) | i) & (n - 1);
            let out = (s >> (bits - 1)) & 1;
            builder
                .transition(s, i, next, out)
                .expect("indices are in range");
        }
    }
    let machine = builder.build().expect("fully specified");
    let basis = symmetric_basis(&machine);
    assert!(
        basis.len() >= 24,
        "the stress machine must have a ≥24-element basis (got {})",
        basis.len()
    );
    machine
}

#[test]
fn deep_basis_search_completes_in_a_minimal_stack_thread() {
    let machine = stress_machine();
    // 64 KiB is far below what ~80 recursion frames with per-frame partition
    // clones needed; the explicit-stack engine keeps its state on the heap.
    let handle = std::thread::Builder::new()
        .name("ostr-stress".into())
        .stack_size(64 * 1024)
        .spawn(move || {
            let outcome = OstrSolver::new(SolverConfig {
                max_nodes: 5_000,
                time_limit: None,
                stop_at_lower_bound: true,
                ..SolverConfig::default()
            })
            .solve(&machine);
            let verified = outcome.best.realize(&machine).verify(&machine).is_none();
            (outcome, verified)
        })
        .expect("spawning a 64 KiB stack thread succeeds");
    let (outcome, verified) = handle
        .join()
        .expect("the iterative search must not overflow a 64 KiB stack");
    assert!(outcome.stats.nodes_investigated > 0);
    assert!(outcome.stats.basis_size >= 24);
    assert!(verified, "the returned solution must realize the machine");
}

#[test]
fn deep_basis_search_is_identical_serial_and_parallel() {
    let machine = stress_machine();
    let config = SolverConfig {
        max_nodes: 5_000,
        time_limit: None,
        stop_at_lower_bound: true,
        ..SolverConfig::default()
    };
    let serial = OstrSolver::new(config).solve(&machine);
    let parallel = OstrSolver::new(SolverConfig {
        parallel_subtrees: 8,
        ..config
    })
    .solve(&machine);
    assert_eq!(serial.best, parallel.best);
    let (mut s, mut p) = (serial.stats, parallel.stats);
    s.elapsed_micros = 0;
    p.elapsed_micros = 0;
    assert_eq!(s, p, "parallel subtree exploration must be byte-identical");
}

/// The work-stealing runner on the 460-element basis, driven from a
/// minimal-stack thread: worker counts and steal seeds pick different
/// schedules (and different segment-speculation hits), none of which may
/// reach the solution or the statistics — and the cooperative fold must
/// keep every frame on the heap just like the serial engine.
#[test]
fn deep_basis_work_stealing_is_deterministic_across_seeds() {
    let machine = stress_machine();
    let config = SolverConfig {
        max_nodes: 5_000,
        time_limit: None,
        stop_at_lower_bound: true,
        ..SolverConfig::default()
    };
    let serial = OstrSolver::new(config).solve(&machine);
    for jobs in [2usize, 4, 8] {
        for steal_seed in [0u64, 1, 0xdead_beef_0bad_f00d] {
            let machine = machine.clone();
            let serial_best = serial.best.clone();
            let serial_stats = serial.stats;
            let handle = std::thread::Builder::new()
                .name(format!("ostr-steal-{jobs}-{steal_seed:x}"))
                .stack_size(64 * 1024)
                .spawn(move || {
                    let stolen = OstrSolver::new(SolverConfig {
                        parallel_subtrees: jobs,
                        steal_seed,
                        ..config
                    })
                    .solve(&machine);
                    assert_eq!(serial_best, stolen.best, "jobs={jobs} seed={steal_seed:#x}");
                    let (mut s, mut p) = (serial_stats, stolen.stats);
                    s.elapsed_micros = 0;
                    p.elapsed_micros = 0;
                    assert_eq!(s, p, "jobs={jobs} seed={steal_seed:#x}");
                })
                .expect("spawning a 64 KiB stack thread succeeds");
            handle
                .join()
                .expect("the work-stealing fold must not overflow a 64 KiB stack");
        }
    }
}
