//! End-to-end integration tests: KISS2 text → OSTR synthesis → encoding →
//! logic synthesis → BIST, across the crate boundaries.

use stc::prelude::*;

/// A small elevator controller used as an external (non-benchmark) input.
const ELEVATOR: &str = "\
.i 2
.o 2
.s 4
.r floor0
00 floor0 floor0 00
01 floor0 moving_up 01
1- floor0 floor0 00
-- moving_up floor1 01
00 floor1 floor1 10
10 floor1 moving_down 11
0- floor1 floor1 10
-- moving_down floor0 11
";

fn elevator() -> Mealy {
    kiss2::parse_with_options(
        ELEVATOR,
        "elevator",
        kiss2::Kiss2Options {
            complete_with_self_loops: true,
        },
    )
    .expect("embedded KISS2 is valid")
}

#[test]
fn kiss2_to_self_testable_controller() {
    let machine = elevator();
    assert_eq!(machine.num_states(), 4);

    let outcome = solve(&machine);
    let realization = outcome.best.realize(&machine);
    assert!(realization.verify(&machine).is_none());

    // The realization must agree with the specification on random words.
    let words: Vec<Vec<usize>> = (0..50u64)
        .map(|seed| {
            (0..32)
                .map(|i| {
                    ((seed.wrapping_mul(6364136223846793005).wrapping_add(i * 17)) % 4) as usize
                })
                .collect()
        })
        .collect();
    for word in &words {
        let (spec, _) = machine.run_from_reset(word);
        let (real, _) = realization
            .machine
            .run(realization.alpha_index(machine.reset_state()), word);
        assert_eq!(spec, real);
    }
}

#[test]
fn every_benchmark_flows_through_the_whole_stack() {
    // One `Synthesis` session drives the same staged flow `stc-pipeline`
    // runs at corpus scale.  Keep the integration test fast: only the small
    // benchmarks go through gate-level synthesis and fault simulation here;
    // the big ones are covered by the (release-mode) bench harness.
    let session = Synthesis::builder()
        .max_nodes(50_000)
        .encoding(EncodingStrategy::Binary)
        .build();
    for benchmark in stc::fsm::benchmarks::suite() {
        let machine = &benchmark.machine;
        if machine.num_states() > 10 || machine.num_inputs() > 16 {
            continue;
        }
        let decomposition = session.decompose_only(machine);
        let realization = &decomposition.realization;
        assert!(
            decomposition.verified,
            "{}: realization does not realize the specification",
            benchmark.name()
        );

        let encoded = session.encode(&decomposition).unwrap();
        let netlist = session.synthesize_logic(&encoded);
        let pipeline = &netlist.logic;
        let encoded = &encoded.pipeline;
        assert_eq!(pipeline.flipflops(), encoded.register_bits());

        // Functional cross-check of the synthesised C1 block against δ1.
        for b1 in 0..realization.s1_len() {
            for i in 0..machine.num_inputs() {
                let mut inputs = stc::encoding::Encoding::sequential(
                    machine.num_inputs(),
                    EncodingStrategy::Binary,
                )
                .bits_of(i);
                let mut r1 = encoded.r1_encoding.bits_of(b1);
                while (r1.len() as u32) < encoded.r1_bits {
                    r1.insert(0, false);
                }
                inputs.extend(r1);
                let got = pipeline.c1.netlist.evaluate(&inputs);
                let mut expected = encoded
                    .r2_encoding
                    .bits_of(realization.tables.delta1[b1][i]);
                while (expected.len() as u32) < encoded.r2_bits {
                    expected.insert(0, false);
                }
                assert_eq!(got, expected, "{}: C1({b1}, {i})", benchmark.name());
            }
        }
    }
}

#[test]
fn architecture_claims_hold_on_small_benchmarks() {
    for name in ["shiftreg", "tav", "dk15", "mc"] {
        let machine = stc::fsm::benchmarks::by_name(name).unwrap().machine;
        let reports = evaluate_architectures(&machine, &ArchitectureOptions::default());
        let conventional = &reports[0];
        let conv_bist = &reports[1];
        let doubled = &reports[2];
        let pipeline = &reports[3];
        // Fig. 2 doubles the flip-flops and adds a bypass level.
        assert_eq!(conv_bist.flipflops, 2 * conventional.flipflops);
        assert_eq!(conv_bist.logic_depth, conventional.logic_depth + 1);
        assert!(conv_bist.untestable_faults > 0);
        // Fig. 3 doubles the logic but adds no delay and leaves nothing untested.
        assert_eq!(doubled.gate_count, 2 * conventional.gate_count);
        assert_eq!(doubled.logic_depth, conventional.logic_depth);
        assert_eq!(doubled.untestable_faults, 0);
        // Fig. 4 never needs more flip-flops than Fig. 2/3 and is fully testable.
        assert!(pipeline.flipflops <= conv_bist.flipflops, "{name}");
        assert_eq!(pipeline.untestable_faults, 0);
        assert!(
            pipeline.fault_coverage.unwrap() + 0.02 >= conv_bist.fault_coverage.unwrap(),
            "{name}"
        );
    }
}
