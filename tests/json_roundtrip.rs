//! Property tests for `stc_pipeline::Json`: `parse(emit(v)) == v` for
//! arbitrary documents, through both the pretty and the compact writer —
//! the invariant behind the golden-file diffs and the serve wire format.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use stc::pipeline::Json;

/// Arbitrary strings, biased towards JSON-hostile content: quotes,
/// backslashes, control characters, non-ASCII.
fn string_strategy() -> BoxedStrategy<String> {
    collection::vec(0u32..128, 0..12)
        .prop_map(|codes| {
            codes
                .into_iter()
                .map(|c| match c {
                    0..=31 => char::from_u32(c).unwrap(), // control characters
                    32 => '"',
                    33 => '\\',
                    34 => '/',
                    35 => 'é',
                    36 => '∩', // multi-byte UTF-8 (the π ∩ τ reports use it)
                    37 => '𝔐', // 4-byte UTF-8
                    other => char::from_u32(other).unwrap(),
                })
                .collect()
        })
        .boxed()
}

/// Numbers that must survive the writer's integer/shortest-float split:
/// whole numbers (written without a fraction), halves, large magnitudes
/// around the 2^53 exactness limit, negatives and tiny fractions.
fn number_strategy() -> BoxedStrategy<f64> {
    (0u32..6, any::<u32>(), 1u32..1000)
        .prop_map(|(kind, raw, denom)| match kind {
            0 => f64::from(raw),                    // whole, fits integer form
            1 => -f64::from(raw),                   // negative whole
            2 => f64::from(raw) + 0.5,              // exact binary fraction
            3 => f64::from(raw) / f64::from(denom), // arbitrary fraction
            4 => (u64::from(raw) << 21) as f64,     // large magnitude < 2^53
            _ => -1.0 / f64::from(denom),           // small negative fraction
        })
        .boxed()
}

/// An arbitrary JSON document of bounded depth.
fn json_strategy(depth: u32) -> BoxedStrategy<Json> {
    let leaf =
        (0u32..5, number_strategy(), string_strategy()).prop_map(|(kind, n, s)| match kind {
            0 => Json::Null,
            1 => Json::Bool(false),
            2 => Json::Bool(true),
            3 => Json::Number(n),
            _ => Json::String(s),
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (0u32..6, collection::vec(json_strategy(depth - 1), 0..4))
        .prop_flat_map(|(kind, children)| {
            let keys = collection::vec(string_strategy(), children.len());
            (Just((kind, children)), keys)
        })
        .prop_map(|((kind, children), keys)| match kind {
            0 | 1 => Json::Array(children),
            _ => Json::Object(keys.into_iter().zip(children).collect()),
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pretty_emission_round_trips(value in json_strategy(3)) {
        let text = value.to_pretty();
        let parsed = Json::parse(&text).expect("pretty output parses");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn compact_emission_round_trips_and_stays_on_one_line(value in json_strategy(3)) {
        let compact = value.to_compact();
        // The serve protocol requires exactly one line per value: the writer
        // must escape every raw newline.
        prop_assert!(!compact.contains('\n'), "compact output spans lines: {compact:?}");
        let parsed = Json::parse(&compact).expect("compact output parses");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn strings_with_escapes_round_trip(s in string_strategy()) {
        let value = Json::String(s);
        prop_assert_eq!(Json::parse(&value.to_pretty()).unwrap(), value.clone());
        prop_assert_eq!(Json::parse(&value.to_compact()).unwrap(), value);
    }

    #[test]
    fn numeric_edge_cases_round_trip(n in number_strategy()) {
        let value = Json::Number(n);
        let parsed = Json::parse(&value.to_compact()).unwrap();
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn u64_values_up_to_2_pow_53_are_exact(raw in any::<u64>()) {
        let exact = raw & ((1 << 53) - 1); // the documented exactness window
        let value = Json::from_u64(exact);
        let parsed = Json::parse(&value.to_compact()).unwrap();
        prop_assert_eq!(parsed.as_u64(), Some(exact));
    }
}
