//! The coverage regression gate, enforced from the test suite.
//!
//! CI diffs `stc run --suite embedded --coverage` against
//! `tests/golden/coverage.json`; this test enforces the same golden from
//! `cargo test`, so a change in the synthesised logic, the BIST plan, or the
//! fault simulator that moves the *measured* single-stuck-at coverage of any
//! embedded machine fails fast locally.  Re-golden after an intentional
//! change:
//!
//! ```text
//! cargo run --release --bin stc -- run --suite embedded --jobs 2 \
//!     --coverage --out tests/golden/coverage.json
//! ```
//!
//! and review the coverage diff like any other code change — a machine whose
//! `measured_coverage` drops below 1.0 means the self-test plan no longer
//! detects every single-stuck-at fault of its blocks.

use stc::pipeline::{embedded_corpus, StcConfig, Synthesis};

#[test]
fn embedded_coverage_report_matches_the_committed_golden() {
    let mut config = StcConfig::default();
    config.set("coverage.enabled", "true").unwrap();
    config.set("jobs", "2").unwrap();
    assert_eq!(
        config.pipeline.coverage.max_patterns, 0,
        "the gate must measure the full plan budget"
    );
    // One suite synthesis feeds both assertions below — the golden diff
    // and the claim check — so the gate pays for the embedded run once.
    let run = Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded");

    let fresh = run.report.to_json_string();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/coverage.json");
    let golden =
        std::fs::read_to_string(golden_path).expect("tests/golden/coverage.json is committed");
    assert_eq!(
        fresh, golden,
        "the measured-coverage report diverged from tests/golden/coverage.json; \
         if the change is intentional, re-golden (see this file's module docs) \
         and review the coverage impact"
    );

    // The paper's claim, measured: for every embedded machine that reaches
    // the gate-level stages, the two-session plan detects *all* single
    // stuck-at faults of C1 and C2 under the default pattern budget.
    let mut gate_level_machines = 0;
    for machine in &run.report.machines {
        if let Some(bist) = &machine.bist {
            gate_level_machines += 1;
            assert_eq!(
                bist.measured_coverage,
                Some(1.0),
                "{}: measured coverage below 100%",
                machine.name
            );
            assert_eq!(bist.undetected_faults, Some(0), "{}", machine.name);
        }
    }
    assert_eq!(
        gate_level_machines, 9,
        "the claim must cover the 9 full machines"
    );
}
