//! Golden integration test: the paper's worked example (Figs. 5–8) must be
//! reproduced exactly by the full pipeline (parse/solve/realize/encode/
//! synthesise/self-test).

use stc::prelude::*;

#[test]
fn figs_5_to_8_are_reproduced() {
    let machine = stc::fsm::paper_example();

    // Fig. 6: the symmetric partition pair π = {{1,2},{3,4}}, τ = {{1,4},{2,3}}
    // (0-indexed: {{0,1},{2,3}} and {{0,3},{1,2}}).
    let pi = Partition::from_blocks(4, &[vec![0, 1], vec![2, 3]]).unwrap();
    let tau = Partition::from_blocks(4, &[vec![0, 3], vec![1, 2]]).unwrap();
    assert!(is_symmetric_pair(&machine, &pi, &tau));
    assert!(pi.meet(&tau).unwrap().is_identity());

    // The solver finds a solution of the same (optimal) cost: 1 + 1 bits.
    let outcome = solve(&machine);
    assert_eq!(outcome.best.cost, Cost::new(2, 2));
    assert_eq!(outcome.pipeline_flipflops(), 2);

    // Fig. 7: the factor tables of the realization built from the published
    // pair (block 0 of π is [1]π = {1,2}, block 0 of τ is [1]τ = {1,4}).
    let realization = Realization::from_symmetric_pair(&machine, pi, tau).unwrap();
    assert_eq!(realization.tables.delta1, vec![vec![1, 0], vec![0, 1]]);
    assert_eq!(realization.tables.delta2, vec![vec![1, 0], vec![0, 1]]);

    // Fig. 8: the realization is a pipeline machine that realizes M.
    assert!(realization.verify(&machine).is_none());
    assert_eq!(realization.machine.num_states(), 4);

    // End-to-end: encode, synthesise logic, self-test.
    let encoded = EncodedPipeline::new(&machine, &realization, EncodingStrategy::Binary);
    assert_eq!(encoded.register_bits(), 2);
    let pipeline = synthesize_pipeline(&encoded, SynthOptions::default());
    let result = pipeline_self_test(&pipeline, 64);
    assert!(result.overall_coverage() > 0.95);
}

/// Smoke test pinned to the acceptance criterion of the workspace bootstrap:
/// `solve(&paper_example())` must yield 2 pipeline flip-flops and a verifying
/// realization, end to end, with nothing but the public facade API.
#[test]
fn paper_example_smoke() {
    let machine = stc::fsm::paper_example();
    let outcome = solve(&machine);
    assert_eq!(outcome.pipeline_flipflops(), 2);
    assert!(!outcome.best.is_trivial());
    assert_eq!(outcome.best.cost.s1(), 2);
    assert_eq!(outcome.best.cost.s2(), 2);
    let realization = outcome.best.realize(&machine);
    assert!(realization.verify(&machine).is_none());
    // The realization is a genuine pipeline: its state set is S1 × S2 and it
    // reproduces the specification's output behaviour from the reset state.
    assert_eq!(
        realization.machine.num_states(),
        outcome.best.cost.s1() * outcome.best.cost.s2()
    );
    let word = [0, 1, 1, 0, 1, 0, 0, 1];
    let (spec_out, _) = machine.run_from_reset(&word);
    let (real_out, _) = realization
        .machine
        .run(realization.alpha_index(machine.reset_state()), &word);
    assert_eq!(spec_out, real_out);
}

#[test]
fn the_naive_and_lattice_solvers_agree_on_the_example() {
    let machine = stc::fsm::paper_example();
    let (naive, stats) = stc::synth::solve_naive(&machine);
    let lattice = solve(&machine);
    assert_eq!(naive.cost, lattice.best.cost);
    assert!(stats.solutions_found > 0);
}
