//! Drives a real `stc serve --listen` subprocess over TCP: ephemeral port
//! discovery through the stderr banner, the JSON-lines protocol across
//! connections, the shared cache, and graceful shutdown by request.

use stc::pipeline::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// Spawns `stc serve --listen 127.0.0.1:0 <extra-args>` and extracts the
/// bound address from the "listening on" banner.  The stderr reader is
/// returned too: dropping the pipe early would EPIPE the server's final
/// status line.
fn spawn_server(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stc"))
        .args(["serve", "--listen", "127.0.0.1:0", "--patterns", "32"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the stc binary spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr line") > 0,
            "server exited before printing its address"
        );
        if let Some(rest) = line.trim_end().strip_prefix("stc serve: listening on ") {
            break rest
                .split(',')
                .next()
                .expect("address before comma")
                .to_string();
        }
    };
    (child, addr, stderr)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let writer = TcpStream::connect(addr).expect("connect to stc serve");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Self { writer, reader }
    }

    fn roundtrip(&mut self, request: &str) -> Json {
        writeln!(self.writer, "{request}").expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(&line).expect("response is JSON")
    }
}

#[test]
fn network_serve_round_trips_requests_and_shuts_down_on_request() {
    let (mut child, addr, _stderr) = spawn_server(&[]);

    let mut first = Client::connect(&addr);
    let pong = first.roundtrip(r#"{"id": 1, "ping": true}"#);
    assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));

    let response =
        first.roundtrip(r#"{"id": 2, "machine": "tav", "overrides": {"solver.max_nodes": 50000}}"#);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("machine").unwrap().as_str(), Some("tav"));
    assert_eq!(
        response
            .get("config")
            .unwrap()
            .get("max_nodes")
            .unwrap()
            .as_u64(),
        Some(50_000)
    );
    assert_eq!(
        response
            .get("report")
            .unwrap()
            .get("status")
            .unwrap()
            .as_str(),
        Some("full")
    );

    // A second connection: the default-config variant is a fresh synthesis,
    // a repeat of it on yet another connection hits the shared cache.
    let mut second = Client::connect(&addr);
    let fresh = second.roundtrip(r#"{"id": 3, "machine": "tav"}"#);
    assert_eq!(fresh.get("ok"), Some(&Json::Bool(true)));
    let mut third = Client::connect(&addr);
    let replayed = third.roundtrip(r#"{"id": 3, "machine": "tav"}"#);
    assert_eq!(replayed, fresh);

    let stats = third.roundtrip(r#"{"id": 4, "stats": true}"#);
    let stats = stats.get("stats").unwrap();
    assert_eq!(
        stats.get("cache").unwrap().get("enabled"),
        Some(&Json::Bool(true))
    );
    assert!(
        stats
            .get("cache")
            .unwrap()
            .get("hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    assert!(
        stats
            .get("connections")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 3
    );

    // Malformed input gets an error line, the connection survives.
    let error = third.roundtrip("this is not json");
    assert_eq!(error.get("ok"), Some(&Json::Bool(false)));

    let ack = third.roundtrip(r#"{"id": 5, "shutdown": true}"#);
    assert_eq!(ack.get("shutdown"), Some(&Json::Bool(true)));
    let status = child.wait().expect("server exits");
    assert!(status.success(), "graceful shutdown exits 0");
}

#[test]
fn cache_size_zero_disables_the_cache() {
    let (mut child, addr, _stderr) = spawn_server(&["--cache-size", "0"]);
    let mut client = Client::connect(&addr);
    client.roundtrip(r#"{"id": 1, "machine": "tav"}"#);
    client.roundtrip(r#"{"id": 1, "machine": "tav"}"#);
    let stats = client.roundtrip(r#"{"id": 2, "stats": true}"#);
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("enabled"), Some(&Json::Bool(false)));
    client.roundtrip(r#"{"id": 3, "shutdown": true}"#);
    assert!(child.wait().unwrap().success());
}

#[test]
fn connections_beyond_the_limit_are_rejected() {
    let (mut child, addr, _stderr) = spawn_server(&["--max-connections", "1"]);
    let mut first = Client::connect(&addr);
    // A completed roundtrip guarantees the first connection is registered.
    first.roundtrip(r#"{"id": 1, "ping": true}"#);
    let mut second = Client::connect(&addr);
    let rejection = second.roundtrip(r#"{"id": 2, "ping": true}"#);
    assert_eq!(rejection.get("ok"), Some(&Json::Bool(false)));
    assert!(
        rejection
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("connection limit"),
        "{rejection:?}"
    );
    first.roundtrip(r#"{"id": 3, "shutdown": true}"#);
    assert!(child.wait().unwrap().success());
}
