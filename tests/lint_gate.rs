//! The lint regression gate, enforced from the test suite.
//!
//! CI diffs `stc lint --suite embedded` against `tests/golden/lint.json`;
//! this test enforces the same golden from `cargo test`, so any change to
//! the lints, the SCOAP metrics, the synthesised netlists, or the report
//! encoding that moves a diagnostic or a hard-net ranking fails fast
//! locally.  Re-golden after an intentional change:
//!
//! ```text
//! cargo run --release --bin stc -- lint --suite embedded \
//!     --out tests/golden/lint.json
//! ```
//!
//! and review the diff like any other code change — a new error-level
//! finding on an embedded machine means the suite is no longer lint-clean
//! and `stc lint` (and CI) will start failing.

use stc::analyze::Severity;
use stc::pipeline::{embedded_corpus, lint_json, StcConfig, Synthesis};

#[test]
fn embedded_lint_report_matches_the_committed_golden() {
    let mut config = StcConfig::default();
    config.set("analysis.enabled", "true").unwrap();
    let run = Synthesis::builder()
        .config(config)
        .build()
        .run_suite(&embedded_corpus(), "embedded");

    let fresh = lint_json(&run.report).to_pretty();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint.json");
    let golden = std::fs::read_to_string(golden_path).expect("tests/golden/lint.json is committed");
    assert_eq!(
        fresh, golden,
        "the lint report diverged from tests/golden/lint.json; if the change \
         is intentional, re-golden (see this file's module docs) and review \
         the findings diff"
    );

    // The embedded suite must stay lint-clean at the default severity gate:
    // informational findings are expected (benchmark KISS2 expansions leave
    // constant and duplicate input columns), errors are not.
    let errors: usize = run
        .report
        .machines
        .iter()
        .filter_map(|m| m.analysis.as_ref())
        .map(|a| a.count_at_least(Severity::Error))
        .sum();
    assert_eq!(errors, 0, "embedded suite has error-level lint findings");
}
